"""The ``repro-serve`` HTTP application: routes, handlers, JSON shapes.

One :class:`ServeApp` wraps a live :class:`~repro.analytics.storage.FlowStore`
and exposes its query surface over HTTP/JSON (full reference in
``docs/http-api.md``):

* **Snapshot isolation** — every ``/query/*`` request runs over a
  pinned :class:`~repro.analytics.storage.StoreSnapshot`, so its answer
  is computed against one frozen member set even while ingest, seals
  and compactions land concurrently; a pinned reader can never 404
  half-way through a scan.
* **Single-flight coalescing** — identical concurrent queries (same
  route + canonicalized params) share one execution and one snapshot
  (:mod:`repro.serve.singleflight`); the duplicate callers surface in
  ``serve_coalesced_total``.
* **Single-writer ingest** — ``POST /ingest`` accepts one eventcodec
  tagged-flow batch per request and acknowledges only after the
  store's WAL fsync; a writer lock serializes ingest with the CLI's
  pipeline drain, preserving the store's single-writer contract.
* **Metrics** — ``GET /metrics`` renders the process registry in
  Prometheus text format (catalog in ``docs/observability.md``).
* **Overload safety** — every request passes a bounded admission gate
  (:mod:`repro.serve.admission`; excess load is shed with 503 +
  ``Retry-After``), queries carry a cooperative deadline
  (:mod:`repro.serve.deadline`; expiry returns 504 with partial-work
  counters), and the ingest path sits behind a read-only circuit
  breaker (:mod:`repro.serve.governor`).  ``/health`` and ``/metrics``
  bypass the gate so the daemon stays observable under load.

Everything is stdlib: :class:`http.server.ThreadingHTTPServer` gives
one thread per in-flight request, which the store's mutex discipline
(lock-free sealed-segment scans, serialized tail access) is built for.
The transport hardening — per-connection socket timeouts, daemon
threads, ``Content-Length``-first body handling — lives in
:meth:`ServeApp.make_server`, so a slow-loris client times out and an
oversized POST is refused *before* its body is read.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.analytics.storage import FlowStore, QueryHint
from repro.net.ip import ip_from_str, ip_to_str
from repro.serve.admission import AdmissionController
from repro.serve.deadline import DEADLINE_HEADER, Deadline, DeadlineExceeded
from repro.serve.governor import READ_ONLY, DegradationGovernor
from repro.serve.metrics import MetricsRegistry
from repro.serve.singleflight import SingleFlightTimeout
from repro.sniffer.eventcodec import PROTOCOLS

__all__ = ["ServeApp", "BadRequest"]

#: Refuse ingest bodies past this size (64 MiB): a stray huge POST must
#: not balloon the tail past every spill budget in one call.
MAX_INGEST_BYTES = 64 << 20

_PROTOCOL_BY_VALUE = {p.value: i for i, p in enumerate(PROTOCOLS)}


class BadRequest(ValueError):
    """Maps to a 400 with ``{"error": ...}``."""


def _one(params: dict, name: str, required: bool = False,
         convert: Optional[Callable] = None):
    """Single-valued query parameter (400 on repeats / bad values)."""
    values = params.get(name, [])
    if not values:
        if required:
            raise BadRequest(f"missing required parameter {name!r}")
        return None
    if len(values) > 1:
        raise BadRequest(f"parameter {name!r} given more than once")
    value = values[0]
    if convert is None:
        return value
    try:
        return convert(value)
    except (ValueError, OverflowError) as exc:
        raise BadRequest(f"bad {name!r}: {exc}") from exc


def _many(params: dict, name: str, convert: Callable) -> list:
    out = []
    for value in params.get(name, []):
        try:
            out.append(convert(value))
        except (ValueError, OverflowError) as exc:
            raise BadRequest(f"bad {name!r}: {exc}") from exc
    return out


def _ip_param(text: str) -> int:
    """Server/client address: dotted quad or bare u32."""
    if "." in text:
        return ip_from_str(text)
    value = int(text)
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"{value} is not a u32 address")
    return value


def _protocol_param(text: str) -> int:
    index = _PROTOCOL_BY_VALUE.get(text.lower())
    if index is None:
        raise ValueError(
            f"unknown protocol {text!r} "
            f"(one of {sorted(_PROTOCOL_BY_VALUE)})"
        )
    return index


def _hint_from_params(params: dict) -> QueryHint:
    """The shared ``fqdn/sld/server/client/t0/t1/protocol`` hint
    vocabulary (used by ``/prune-report``)."""
    fqdn = _one(params, "fqdn")
    sld = _one(params, "sld")
    servers = _many(params, "server", _ip_param) or None
    clients = _many(params, "client", _ip_param) or None
    t0 = _one(params, "t0", convert=float)
    t1 = _one(params, "t1", convert=float)
    if (t0 is None) != (t1 is None):
        raise BadRequest("t0 and t1 must be given together")
    if t0 is not None and t0 > t1:
        # An inverted window is always a caller bug: every segment's
        # metadata "proves" no row can match, so /prune-report would
        # happily report a 100% prune while the query routes scan and
        # return empty — answer 400 on both instead (the CLI agrees).
        raise BadRequest("t0 must be <= t1")
    return QueryHint(
        fqdn=fqdn.lower() if fqdn else None,
        sld=sld.lower() if sld else None,
        servers=servers,
        clients=clients,
        window=(t0, t1) if t0 is not None else None,
        protocol=_one(params, "protocol", convert=_protocol_param),
    )


class ServeApp:
    """The HTTP application state: store + metrics + coalescing +
    admission + degradation.

    Transport-free by design — :meth:`handle` maps ``(method, path,
    params, body, headers)`` to ``(status, content_type, payload,
    headers)``, so the routing layer is unit-testable without sockets,
    and :meth:`make_server` wraps it in a ``ThreadingHTTPServer``.
    """

    def __init__(self, store: FlowStore,
                 registry: Optional[MetricsRegistry] = None, *,
                 admission: Optional[AdmissionController] = None,
                 governor: Optional[DegradationGovernor] = None,
                 default_deadline_s: Optional[float] = 30.0,
                 max_deadline_s: float = 300.0,
                 socket_timeout_s: float = 10.0):
        from repro.serve.singleflight import SingleFlight

        self.store = store
        self.registry = registry if registry is not None else (
            MetricsRegistry()
        )
        self.singleflight = SingleFlight()
        #: Serializes every ingest path into the single-writer store
        #: (HTTP POSTs against each other and against the CLI's
        #: pipeline drain loop).
        self.writer_lock = threading.Lock()
        self.admission = admission if admission is not None else (
            AdmissionController()
        )
        self.governor = governor if governor is not None else (
            DegradationGovernor()
        )
        #: Deadline applied when the request carries no
        #: ``X-Request-Deadline`` header (None disables); header values
        #: are clamped to ``max_deadline_s``.
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        #: Per-connection socket timeout for :meth:`make_server` —
        #: drops slow-loris clients instead of accumulating them.
        self.socket_timeout_s = socket_timeout_s
        #: Ingest body cap (instance-level so tests can shrink it).
        self.max_ingest_bytes = MAX_INGEST_BYTES
        self._register_metrics()
        self.governor.on_transition = (
            lambda to, reason: self.m_degraded_transitions.inc(to=to)
        )
        self.governor.on_probe = (
            lambda outcome: self.m_degraded_probes.inc(outcome=outcome)
        )
        #: Route table for ``/query/*`` — an instance dict so tests
        #: can wrap an entry (e.g. with a barrier) to shape timing.
        self.query_routes: dict[str, Callable] = {
            "len": lambda snap, params: {"rows": len(snap)},
            "tagged-count": lambda snap, params: {
                "tagged_rows": snap.tagged_count,
            },
            "time-span": self._q_time_span,
            "count-by-protocol": self._q_count_by_protocol,
            "fqdns": lambda snap, params: {"fqdns": snap.fqdns()},
            "slds": lambda snap, params: {"slds": snap.slds()},
            "rows-in-window": self._q_rows_in_window,
            "rows-for-fqdn": self._q_rows_for_fqdn,
            "rows-for-domain": self._q_rows_for_domain,
            "rows-for-port": self._q_rows_for_port,
            "servers-for-fqdn": self._q_servers_for_fqdn,
            "servers-for-domain": self._q_servers_for_domain,
            "fqdns-for-servers": self._q_fqdns_for_servers,
            "fqdn-server-counts": self._q_fqdn_server_counts,
            "fqdn-client-counts": self._q_fqdn_client_counts,
            "fqdn-flow-byte-totals": self._q_fqdn_flow_byte_totals,
            "server-flow-counts": self._q_server_flow_counts,
            "unique-servers-per-bin": self._q_unique_servers_per_bin,
        }

    # -- metrics -----------------------------------------------------------

    def _register_metrics(self) -> None:
        reg = self.registry
        store = self.store
        self.m_requests = reg.counter(
            "serve_requests_total",
            "HTTP requests served, by route and status code.",
            labelnames=("route", "code"),
        )
        self.m_latency = reg.histogram(
            "serve_query_seconds",
            "End-to-end /query handler latency in seconds "
            "(coalesced followers included).",
            labelnames=("route",),
        )
        self.m_coalesced = reg.counter(
            "serve_coalesced_total",
            "Queries answered from an identical in-flight execution.",
            labelnames=("route",),
        )
        self.m_ingest_batches = reg.counter(
            "serve_ingest_batches_total",
            "Tagged-flow batches acknowledged into the store.",
        )
        self.m_ingest_rows = reg.counter(
            "serve_ingest_rows_total",
            "Flow rows acknowledged into the store (rate() of this "
            "is the ingest rate).",
        )
        reg.gauge(
            "serve_inflight_queries",
            "Distinct coalescing keys currently executing.",
            fn=lambda: self.singleflight.in_flight(),
        )
        # Overload & degradation (PR 8).
        self.m_shed = reg.counter(
            "serve_shed_total",
            "Requests shed by admission control (503 + Retry-After), "
            "by route class.",
            labelnames=("route_class",),
        )
        self.m_deadline_exceeded = reg.counter(
            "serve_deadline_exceeded_total",
            "Queries cancelled at their deadline (504), by route.",
            labelnames=("route",),
        )
        self.m_degraded_transitions = reg.counter(
            "serve_degraded_transitions_total",
            "Ingest-governor state transitions, by destination state.",
            labelnames=("to",),
        )
        self.m_degraded_probes = reg.counter(
            "serve_degraded_probes_total",
            "Half-open probe ingests while read-only, by outcome.",
            labelnames=("outcome",),
        )
        reg.gauge(
            "serve_read_only",
            "1 while the ingest governor is read-only, else 0.",
            fn=lambda: 1 if self.governor.state == READ_ONLY else 0,
        )
        reg.gauge(
            "serve_admission_inflight_query",
            "Query-class requests currently executing.",
            fn=lambda: self.admission.inflight("query"),
        )
        reg.gauge(
            "serve_admission_queued_query",
            "Query-class requests waiting in the bounded queue.",
            fn=lambda: self.admission.queued("query"),
        )
        reg.gauge(
            "serve_admission_inflight_ingest",
            "Ingest requests currently executing.",
            fn=lambda: self.admission.inflight("ingest"),
        )
        reg.gauge(
            "serve_admission_queued_ingest",
            "Ingest requests waiting in the bounded queue.",
            fn=lambda: self.admission.queued("ingest"),
        )
        # Store-side state, read at scrape time.
        reg.gauge("flowstore_rows",
                  "Total rows (sealed segments + live tail).",
                  fn=lambda: len(store))
        reg.gauge("flowstore_tail_rows",
                  "Rows in the live in-memory tail.",
                  fn=lambda: len(store._tail))
        reg.gauge("flowstore_segments",
                  "Sealed segment files in the manifest.",
                  fn=lambda: len(store._segments))
        reg.gauge("flowstore_quarantined_segments",
                  "Segments quarantined by graceful degradation.",
                  fn=lambda: len(store._quarantined))
        reg.gauge("flowstore_generation",
                  "Manifest generation (bumps on seal/compact).",
                  fn=lambda: store._generation)
        reg.gauge("flowstore_wal_epoch",
                  "Current WAL epoch from the manifest protocol.",
                  fn=lambda: store._wal_epoch)
        reg.gauge("flowstore_pinned_readers",
                  "Readers currently holding pinned snapshots.",
                  fn=lambda: sum(store._pins.values()))
        reg.gauge("flowstore_retired_pending",
                  "Compacted segment files awaiting unpin to unlink.",
                  fn=lambda: len(store._retired))
        scan = store._scan_stats
        reg.counter("flowstore_scan_queries_total",
                    "Whole-store query passes executed.",
                    fn=lambda: scan["queries"])
        reg.counter("flowstore_segments_scanned_total",
                    "Sealed segments materialized/scanned by queries.",
                    fn=lambda: scan["segments_scanned"])
        reg.counter(
            "flowstore_segments_pruned_total",
            "Sealed segments skipped by pruning metadata "
            "(pruned / (scanned + pruned) is the prune hit-rate).",
            fn=lambda: scan["segments_pruned"],
        )
        wal = store._wal_report
        reg.counter("flowstore_wal_recovered_batches",
                    "Journal batches replayed at open.",
                    fn=lambda: wal.get("recovered_batches", 0))
        reg.counter("flowstore_wal_recovered_rows",
                    "Journal rows replayed at open.",
                    fn=lambda: wal.get("recovered_rows", 0))
        reg.counter("flowstore_wal_torn_bytes_dropped",
                    "Torn trailing journal bytes dropped at open.",
                    fn=lambda: wal.get("torn_bytes_dropped", 0))
        reg.counter("flowstore_wal_skipped_records",
                    "Unplayable journal records skipped at open "
                    "(non-zero means sealed data was lost).",
                    fn=lambda: wal.get("skipped_records", 0))

    def note_ingest(self, batches: int, rows: int) -> None:
        """Ingest-accounting hook — also wired as the sniffer
        pipeline's ``store_drain_hook`` by the CLI."""
        if batches:
            self.m_ingest_batches.inc(batches)
        if rows:
            self.m_ingest_rows.inc(rows)

    # -- ingest ------------------------------------------------------------

    def ingest(self, payload: bytes) -> int:
        """Absorb one eventcodec batch; returns acknowledged rows.

        Returns only after the store's WAL append (fsync included when
        ``wal_sync``) — an acknowledged batch survives a crash.
        """
        with self.writer_lock:
            rows = self.store.ingest_batch(payload)
        self.note_ingest(1, rows)
        return rows

    # -- query handlers ----------------------------------------------------

    def _q_time_span(self, snap, params):
        t0, t1 = snap.time_span()
        return {"t0": t0, "t1": t1}

    def _q_count_by_protocol(self, snap, params):
        return {
            "counts": {
                protocol.value: count
                for protocol, count in snap.count_by_protocol().items()
            },
        }

    def _q_rows_in_window(self, snap, params):
        t0 = _one(params, "t0", required=True, convert=float)
        t1 = _one(params, "t1", required=True, convert=float)
        if t0 > t1:
            raise BadRequest("t0 must be <= t1")
        return {"rows": list(snap.rows_in_window(t0, t1))}

    def _q_rows_for_fqdn(self, snap, params):
        fqdn = _one(params, "fqdn", required=True)
        return {"rows": list(snap.rows_for_fqdn(fqdn))}

    def _q_rows_for_domain(self, snap, params):
        sld = _one(params, "sld", required=True)
        return {"rows": list(snap.rows_for_domain(sld))}

    def _q_rows_for_port(self, snap, params):
        port = _one(params, "port", required=True, convert=int)
        return {"rows": list(snap.rows_for_port(port))}

    def _q_servers_for_fqdn(self, snap, params):
        fqdn = _one(params, "fqdn", required=True)
        servers = sorted(snap.servers_for_fqdn(fqdn))
        return {
            "servers": servers,
            "servers_dotted": [ip_to_str(s) for s in servers],
        }

    def _q_servers_for_domain(self, snap, params):
        sld = _one(params, "sld", required=True)
        servers = sorted(snap.servers_for_domain(sld))
        return {
            "servers": servers,
            "servers_dotted": [ip_to_str(s) for s in servers],
        }

    def _q_fqdns_for_servers(self, snap, params):
        servers = _many(params, "server", _ip_param)
        if not servers:
            raise BadRequest("at least one 'server' parameter required")
        return {"fqdns": sorted(snap.fqdns_for_servers(servers))}

    def _q_fqdn_server_counts(self, snap, params):
        groups = snap.fqdn_server_counts()
        return {"groups": [list(group) for group in groups]}

    def _q_fqdn_client_counts(self, snap, params):
        groups = snap.fqdn_client_counts()
        return {"groups": [list(group) for group in groups]}

    def _q_fqdn_flow_byte_totals(self, snap, params):
        groups = snap.fqdn_flow_byte_totals()
        return {"groups": [list(group) for group in groups]}

    def _q_server_flow_counts(self, snap, params):
        counts = snap.server_flow_counts()
        return {"counts": [[server, n] for server, n in counts.items()]}

    def _q_unique_servers_per_bin(self, snap, params):
        sld = _one(params, "sld", required=True)
        bin_seconds = _one(params, "bin", required=True, convert=float)
        if bin_seconds <= 0:
            raise BadRequest("bin must be positive")
        series = snap.unique_servers_per_bin(sld, bin_seconds)
        return {"series": [[t, n] for t, n in series]}

    # -- dispatch ----------------------------------------------------------

    def _run_query(self, route: str, params: dict,
                   deadline: Optional[Deadline] = None) -> dict:
        fn = self.query_routes[route]
        key = (
            route,
            tuple(sorted(
                (name, tuple(values))
                for name, values in params.items()
            )),
        )
        start = time.perf_counter()

        def compute():
            # One pinned snapshot per execution: the whole answer is
            # computed against a single generation, and coalesced
            # followers share it.  The deadline rides on the snapshot
            # (instance attribute), so the store's kernel loop — pool
            # workers included — checks *this* request's budget and no
            # other reader's.
            with self.store.pin() as snap:
                if deadline is not None:
                    snap.cancel_token = deadline
                return fn(snap, params)

        # A follower waits at most its own remaining budget, and a
        # failed leader (crash or *its* deadline) makes the follower
        # re-dispatch with its own — coalescing can delay a caller,
        # never hang or fail it on someone else's behalf.
        result, coalesced = self.singleflight.do(
            key, compute,
            timeout=(
                None if deadline is None else deadline.remaining()
            ),
            retry_on_leader_error=True,
        )
        self.m_latency.observe(
            time.perf_counter() - start, route=route
        )
        if coalesced:
            self.m_coalesced.inc(route=route)
        return result

    @staticmethod
    def _route_class(path: str) -> Optional[str]:
        """Admission route class (None = always admitted)."""
        if path in ("/health", "/metrics"):
            return None
        if path == "/ingest":
            return "ingest"
        return "query"

    def _deadline_from_headers(self, headers) -> Optional[Deadline]:
        raw = None
        if headers is not None:
            raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            if self.default_deadline_s is None:
                return None
            return Deadline(self.default_deadline_s)
        try:
            seconds = float(raw)
        except ValueError as exc:
            raise BadRequest(
                f"bad {DEADLINE_HEADER}: {raw!r}"
            ) from exc
        if not seconds > 0:
            raise BadRequest(f"{DEADLINE_HEADER} must be positive")
        return Deadline(min(seconds, self.max_deadline_s))

    def handle(self, method: str, path: str, params: dict,
               body: bytes = b"",
               headers=None) -> tuple[int, str, bytes, dict]:
        """Route one request → ``(status, content_type, payload,
        extra_headers)``.

        ``headers`` is the request-header mapping (anything with
        ``.get``); only ``X-Request-Deadline`` is consulted.  The
        admission gate runs first — ``/health`` and ``/metrics`` are
        exempt, everything else can be shed with 503 + ``Retry-After``
        before any store work happens.
        """
        route = path
        route_class = self._route_class(path)
        if route_class is None:
            return self._dispatch(method, path, params, body, route,
                                  None)
        try:
            deadline = self._deadline_from_headers(headers)
        except BadRequest as exc:
            return self._finish(route, 400, {"error": str(exc)})
        budget = None if deadline is None else deadline.remaining()
        if not self.admission.try_acquire(route_class, budget):
            self.m_shed.inc(route_class=route_class)
            limits = self.admission.limits[route_class]
            retry_after = max(1, round(limits.max_wait_s))
            return self._finish(route, 503, {
                "error": "overloaded",
                "route_class": route_class,
                "retry_after_s": retry_after,
            }, headers={"Retry-After": str(retry_after)})
        try:
            return self._dispatch(method, path, params, body, route,
                                  deadline)
        finally:
            self.admission.release(route_class)

    def _dispatch(self, method: str, path: str, params: dict,
                  body: bytes, route: str,
                  deadline: Optional[Deadline]
                  ) -> tuple[int, str, bytes, dict]:
        try:
            if path == "/ingest":
                if method != "POST":
                    return self._finish(route, 405, {
                        "error": "POST required",
                    })
                return self._handle_ingest(route, body)
            if method != "GET":
                return self._finish(route, 405, {"error": "GET required"})
            if path == "/metrics":
                payload = self.registry.render().encode("utf-8")
                self.m_requests.inc(route=route, code="200")
                return (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    payload,
                    {},
                )
            if path == "/health":
                payload = self.store.health()
                payload["service"] = self.governor.snapshot()
                payload["admission"] = self.admission.snapshot()
                return self._finish(route, 200, payload)
            if path == "/stats":
                return self._finish(route, 200, self.store.stats())
            if path == "/prune-report":
                hint = _hint_from_params(params)
                return self._finish(
                    route, 200, self.store.prune_report(hint)
                )
            if path.startswith("/query/"):
                name = path[len("/query/"):]
                if name not in self.query_routes:
                    return self._finish(route, 404, {
                        "error": f"unknown query {name!r}",
                        "queries": sorted(self.query_routes),
                    })
                return self._finish(
                    route, 200, self._run_query(name, params, deadline)
                )
            return self._finish(route, 404, {"error": "unknown route"})
        except BadRequest as exc:
            return self._finish(route, 400, {"error": str(exc)})
        except DeadlineExceeded as exc:
            self.m_deadline_exceeded.inc(route=route)
            payload = {"error": str(exc)}
            if deadline is not None:
                payload["deadline_s"] = deadline.seconds
                payload.update(deadline.progress())
            return self._finish(route, 504, payload)
        except SingleFlightTimeout:
            self.m_deadline_exceeded.inc(route=route)
            payload = {
                "error": "deadline exceeded waiting on a coalesced "
                         "in-flight query",
            }
            if deadline is not None:
                payload["deadline_s"] = deadline.seconds
                payload.update(deadline.progress())
            return self._finish(route, 504, payload)
        except Exception as exc:  # pragma: no cover - defensive
            return self._finish(route, 500, {
                "error": f"{type(exc).__name__}: {exc}",
            })

    def _handle_ingest(self, route: str,
                       body: bytes) -> tuple[int, str, bytes, dict]:
        if not body:
            raise BadRequest("empty ingest body")
        if len(body) > self.max_ingest_bytes:
            return self._finish(route, 413, {
                "error": (
                    f"ingest body over {self.max_ingest_bytes} bytes"
                ),
            })
        admitted, info = self.governor.admit()
        if not admitted:
            retry_after = max(1, round(info["retry_after_s"]))
            return self._finish(route, 503, dict(info, **{
                "error": "store is read-only",
            }), headers={"Retry-After": str(retry_after)})
        try:
            rows = self.ingest(body)
        except ValueError as exc:
            # The store's I/O path worked (the batch just did not
            # decode) — this is the client's 400, not a store failure.
            self.governor.record_success()
            raise BadRequest(f"undecodable batch: {exc}") from exc
        except OSError as exc:
            # The bounded retry/backoff inside the store is exhausted:
            # report, count, and (maybe) trip the breaker.
            self.governor.record_failure(exc)
            return self._finish(route, 503, {
                "error": "ingest failed",
                "reason": self.governor.reason,
                "detail": str(exc),
                "state": self.governor.state,
            }, headers={"Retry-After": "1"})
        self.governor.record_success()
        return self._finish(route, 200, {"rows": rows})

    def reject(self, route: str, status: int, message: str
               ) -> tuple[int, str, bytes, dict]:
        """A transport-level refusal (oversized/truncated body) that
        still lands in ``serve_requests_total``.  The connection is
        closed — the client may still be mid-upload."""
        return self._finish(route, status, {"error": message},
                            headers={"Connection": "close"})

    def _finish(self, route: str, status: int, payload: dict,
                headers: Optional[dict] = None
                ) -> tuple[int, str, bytes, dict]:
        self.m_requests.inc(route=route, code=str(status))
        raw = json.dumps(payload, sort_keys=True).encode("utf-8")
        return status, "application/json", raw, dict(headers or {})

    # -- transport ---------------------------------------------------------

    def make_server(self, host: str = "127.0.0.1",
                    port: int = 0) -> ThreadingHTTPServer:
        """A ready-to-run threading HTTP server bound to this app
        (``port=0`` picks a free port; read ``server_address``).

        Hardened against abusive clients: per-connection socket
        timeouts (a slow-loris stalls for ``socket_timeout_s``, then
        its thread is reclaimed), daemon connection threads (a wedged
        client cannot block process exit), and a ``Content-Length``-
        first POST path — an oversized ingest body is refused with 413
        *before* a single body byte is read, and a mid-body disconnect
        or stall drops the connection instead of wedging the handler.
        """
        app = self

        class Handler(BaseHTTPRequestHandler):
            # Quiet by default: one log line per request belongs to
            # access-log tooling, not stderr.
            def log_message(self, format, *args):
                pass

            protocol_version = "HTTP/1.1"
            # StreamRequestHandler applies this to the connection
            # socket, so reading the request line, headers, and body
            # are all bounded — handle_one_request treats the timeout
            # as end-of-connection.
            timeout = app.socket_timeout_s

            def _reply(self, response) -> None:
                status, content_type, payload, headers = response
                try:
                    self.send_response(status)
                    self.send_header("Content-Type", content_type)
                    self.send_header(
                        "Content-Length", str(len(payload))
                    )
                    for name, value in headers.items():
                        # send_header("Connection", "close") also
                        # flips close_connection for us.
                        self.send_header(name, value)
                    self.end_headers()
                    self.wfile.write(payload)
                except OSError:
                    # The client is gone (reset, broken pipe, or its
                    # socket timed out) — nothing to tell it; just
                    # release the thread.
                    self.close_connection = True

            def _respond(self, body: bytes = b""):
                split = urlsplit(self.path)
                params = parse_qs(
                    split.query, keep_blank_values=True
                )
                self._reply(app.handle(
                    self.command, split.path, params, body,
                    headers=self.headers,
                ))

            def do_GET(self):
                self._respond()

            def do_POST(self):
                split = urlsplit(self.path)
                raw_length = self.headers.get("Content-Length")
                if raw_length is None:
                    return self._reply(app.reject(
                        split.path, 411, "Content-Length required"
                    ))
                try:
                    length = int(raw_length)
                    if length < 0:
                        raise ValueError(raw_length)
                except ValueError:
                    return self._reply(app.reject(
                        split.path, 400,
                        f"bad Content-Length {raw_length!r}",
                    ))
                if (split.path == "/ingest"
                        and length > app.max_ingest_bytes):
                    # Refuse from the header alone: reading (then
                    # discarding) a 64 MiB+ body is exactly the
                    # resource exhaustion the cap exists to prevent.
                    return self._reply(app.reject(
                        split.path, 413,
                        f"ingest body over {app.max_ingest_bytes} "
                        f"bytes",
                    ))
                try:
                    body = self.rfile.read(length) if length else b""
                except OSError:
                    # Slow-loris mid-body: the socket timeout fired.
                    self.close_connection = True
                    return
                if len(body) < length:
                    # Mid-body disconnect: never hand a torn batch to
                    # the app.
                    return self._reply(app.reject(
                        split.path, 400,
                        f"truncated body ({len(body)} of {length} "
                        f"bytes)",
                    ))
                self._respond(body)

        class Server(ThreadingHTTPServer):
            # Already ThreadingHTTPServer's default, pinned here
            # because the chaos suite relies on it: connection threads
            # must never block process exit.
            daemon_threads = True

            def handle_error(self, request, client_address):
                # Abusive/vanished clients are expected traffic for
                # this server, not stack-trace material.
                import sys
                exc = sys.exc_info()[1]
                if isinstance(exc, (BrokenPipeError,
                                    ConnectionResetError,
                                    TimeoutError)):
                    return
                super().handle_error(request, client_address)

        return Server((host, port), Handler)
