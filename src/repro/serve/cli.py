"""``repro-serve`` — run the always-on query service from the shell.

Wraps one durable :class:`~repro.analytics.storage.FlowStore` (WAL on
by default) and the HTTP query API of :mod:`repro.serve.server` in a
single process.  Three ingest arrangements:

* ``repro-serve DIR`` — serve an existing store; new rows arrive only
  via ``POST /ingest`` (eventcodec batches);
* ``repro-serve DIR --pcap FILE`` — additionally run the sniffer
  pipeline over a capture on the main thread, draining tagged batches
  into the same store while queries are answered live;
* optional background compaction (``--compact-small`` +
  ``--compact-interval``) — the maintenance loop the runbook
  describes, safe under readers thanks to snapshot pinning.

SIGTERM/SIGINT drain through the PR6 shutdown path: the pipeline's
tagged flows are streamed into the store, the tail is sealed and the
journal reset, the listener stops, and only then is the signal
re-delivered so the exit status is honest.  See ``docs/runbook.md``.
"""

from __future__ import annotations

import argparse
import sys
import threading

from pathlib import Path

from repro.analytics.shard import SHARDS_NAME, ShardCoordinator
from repro.analytics.storage import FlowStore
from repro.serve.admission import AdmissionController, RouteClassLimits
from repro.serve.governor import DegradationGovernor
from repro.serve.server import ServeApp
from repro.sniffer.fanout import install_shutdown_signals


class SerializedWriter:
    """A FlowStore facade that routes every ingest-side call through
    the app's writer lock.

    The sniffer pipeline drains into the store from the main thread
    while HTTP ``POST /ingest`` lands on listener threads; both must
    honor the store's single-writer contract, so the pipeline is
    handed this facade instead of the bare store.  Reads delegate
    unchanged (the store's own mutex covers them).
    """

    def __init__(self, store: FlowStore, lock: threading.Lock):
        self._store = store
        self._lock = lock

    def ingest_batch(self, payload) -> int:
        with self._lock:
            return self._store.ingest_batch(payload)

    def add(self, flow) -> None:
        with self._lock:
            self._store.add(flow)

    def add_all(self, flows) -> None:
        with self._lock:
            self._store.add_all(flows)

    def flush(self):
        with self._lock:
            return self._store.flush()

    def compact(self, small_rows=None) -> int:
        with self._lock:
            return self._store.compact(small_rows)

    def close(self) -> None:
        with self._lock:
            self._store.close()

    def __getattr__(self, name):
        return getattr(self._store, name)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the analytics query surface of a durable "
                    "flow store over HTTP while ingesting live.",
    )
    parser.add_argument(
        "store", metavar="DIR",
        help="flow-store directory (created if missing)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8800,
                        help="TCP port (default 8800; 0 = ephemeral)")
    parser.add_argument(
        "--pcap", metavar="FILE",
        help="also ingest this capture through the sniffer pipeline "
             "while serving",
    )
    parser.add_argument("--clist", type=int, default=200_000,
                        help="resolver circular-list size (with --pcap)")
    parser.add_argument("--warmup", type=float, default=300.0,
                        help="statistics warm-up seconds (with --pcap)")
    parser.add_argument("--batch-events", type=int, default=8192,
                        help="events per drained batch (with --pcap)")
    parser.add_argument("--spill-rows", type=int, default=None,
                        help="tail row budget before sealing a segment")
    parser.add_argument("--spill-bytes", type=int, default=None,
                        help="tail byte budget before sealing a segment")
    parser.add_argument("--parallel", type=int, default=None,
                        help="query worker threads (default 1 = serial)")
    parser.add_argument("--no-prune", action="store_true",
                        help="disable metadata segment pruning")
    parser.add_argument("--no-wal", action="store_true",
                        help="disable the ingest journal (crash loses "
                             "the unsealed tail)")
    parser.add_argument("--no-wal-sync", action="store_true",
                        help="journal without per-record fsync")
    parser.add_argument("--strict", action="store_true",
                        help="fail instead of quarantining bad segments")
    parser.add_argument(
        "--compact-small", type=int, metavar="ROWS", default=None,
        help="background-compact adjacent runs of segments smaller "
             "than ROWS (needs --compact-interval)",
    )
    parser.add_argument(
        "--compact-interval", type=float, metavar="SECONDS",
        default=None,
        help="seconds between background compaction passes",
    )
    overload = parser.add_argument_group(
        "overload protection (docs/runbook.md: Overload & degraded "
        "mode)"
    )
    overload.add_argument("--query-inflight", type=int, default=8,
                          help="concurrent query-class requests before "
                               "queueing (default 8)")
    overload.add_argument("--query-queue", type=int, default=16,
                          help="queued query-class requests before "
                               "shedding with 503 (default 16)")
    overload.add_argument("--ingest-inflight", type=int, default=2,
                          help="concurrent /ingest requests before "
                               "queueing (default 2)")
    overload.add_argument("--ingest-queue", type=int, default=8,
                          help="queued /ingest requests before "
                               "shedding with 503 (default 8)")
    overload.add_argument("--queue-wait", type=float, default=0.5,
                          metavar="SECONDS",
                          help="max seconds a request waits in the "
                               "admission queue (default 0.5)")
    overload.add_argument("--default-deadline", type=float,
                          default=30.0, metavar="SECONDS",
                          help="query deadline when the client sends "
                               "no X-Request-Deadline (default 30; "
                               "0 disables)")
    overload.add_argument("--socket-timeout", type=float, default=10.0,
                          metavar="SECONDS",
                          help="per-connection socket timeout "
                               "(default 10)")
    overload.add_argument("--degraded-backoff", type=float,
                          default=1.0, metavar="SECONDS",
                          help="initial probe backoff after the store "
                               "goes read-only (default 1; doubles "
                               "per failed probe)")
    overload.add_argument("--degraded-backoff-max", type=float,
                          default=60.0, metavar="SECONDS",
                          help="probe backoff ceiling (default 60)")
    overload.add_argument("--degraded-threshold", type=int, default=3,
                          help="consecutive non-capacity ingest "
                               "failures before read-only "
                               "(default 3; ENOSPC/EDQUOT trip "
                               "immediately)")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if (args.compact_interval is None) != (args.compact_small is None):
        _build_parser().error(
            "--compact-small and --compact-interval go together"
        )

    # A directory carrying SHARDS.json is a sharded store: front the
    # scatter-gather coordinator instead of a flat FlowStore.  The
    # serve layer is agnostic — both expose the same ingest/query/
    # stats surface.
    store_cls = (
        ShardCoordinator
        if (Path(args.store) / SHARDS_NAME).exists()
        else FlowStore
    )
    store = store_cls(
        args.store,
        spill_rows=args.spill_rows,
        spill_bytes=args.spill_bytes,
        parallel=args.parallel,
        prune=not args.no_prune,
        wal=not args.no_wal,
        wal_sync=not args.no_wal_sync,
        strict=args.strict,
    )
    app = ServeApp(
        store,
        admission=AdmissionController({
            "query": RouteClassLimits(
                args.query_inflight, args.query_queue,
                args.queue_wait,
            ),
            "ingest": RouteClassLimits(
                args.ingest_inflight, args.ingest_queue,
                args.queue_wait,
            ),
        }),
        governor=DegradationGovernor(
            failure_threshold=args.degraded_threshold,
            backoff_s=args.degraded_backoff,
            backoff_max_s=args.degraded_backoff_max,
        ),
        default_deadline_s=(
            args.default_deadline if args.default_deadline > 0
            else None
        ),
        socket_timeout_s=args.socket_timeout,
    )
    httpd = app.make_server(args.host, args.port)
    host, port = httpd.server_address[:2]
    listener = threading.Thread(
        target=httpd.serve_forever, name="repro-serve-http", daemon=True
    )
    listener.start()
    print(f"repro-serve: listening on http://{host}:{port} "
          f"(store {args.store}, {len(store)} rows)", flush=True)

    writer = SerializedWriter(store, app.writer_lock)

    pipeline = None
    if args.pcap:
        from repro.sniffer.cli import sniff_pcap

        # Probe before any ingest side effect (typo'd path must not
        # dirty the store).
        with open(args.pcap, "rb"):
            pass

    stop_maintenance = threading.Event()
    maintenance = None
    if args.compact_interval is not None:
        def _maintain():
            while not stop_maintenance.wait(args.compact_interval):
                removed = writer.compact(args.compact_small)
                if removed:
                    print(f"repro-serve: compacted {removed} segments",
                          flush=True)
        maintenance = threading.Thread(
            target=_maintain, name="repro-serve-compact", daemon=True
        )
        maintenance.start()

    closed = threading.Event()

    def shutdown() -> None:
        if closed.is_set():
            return
        closed.set()
        stop_maintenance.set()
        httpd.shutdown()
        httpd.server_close()
        if pipeline is not None:
            pipeline.close()      # drain tagged flows + seal the tail
        writer.close()

    install_shutdown_signals(shutdown)

    def _bind_pipeline(built) -> None:
        # Bound before the first packet, so a SIGTERM mid-capture
        # still drains through pipeline.close() (the PR6 path).
        nonlocal pipeline
        pipeline = built

    try:
        if args.pcap:
            sniff_pcap(
                args.pcap,
                clist_size=args.clist,
                warmup=args.warmup,
                batch_events=args.batch_events,
                flow_store=writer,
                store_drain_hook=app.note_ingest,
                on_pipeline=_bind_pipeline,
            )
            print(f"repro-serve: capture ingested, {len(store)} rows "
                  f"total; still serving (Ctrl-C to stop)", flush=True)
        # Serve until a signal arrives (the handler re-delivers it
        # after a clean drain, terminating the wait).  Polled rather
        # than awaited forever: the kernel may hand the signal to a
        # busy listener thread, and the Python-level handler then only
        # runs once the main thread wakes to check for it.
        while not closed.wait(0.5):
            pass
    except KeyboardInterrupt:  # pragma: no cover - interactive
        shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
