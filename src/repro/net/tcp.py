"""TCP connection tracking: reconstruct layer-4 flows from segments.

The flow sniffer (Sec. 3.1) "reconstructs layer-4 flows by aggregating
packets based on the 5-tuple".  This module implements the per-connection
state machine used on the packet path: handshake detection fixes which
endpoint is the client, payload bytes are accumulated per direction, and
FIN/RST or an idle timeout closes the flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.net.packet import Packet


class TcpState(enum.Enum):
    """Connection lifecycle as observed by a passive monitor."""

    SYN_SEEN = "syn-seen"
    ESTABLISHED = "established"
    CLOSING = "closing"
    CLOSED = "closed"


@dataclass
class TcpConnection:
    """Book-keeping for one tracked connection."""

    fid: FiveTuple
    state: TcpState
    start: float
    last_seen: float
    bytes_up: int = 0
    bytes_down: int = 0
    packets: int = 0
    fin_up: bool = False
    fin_down: bool = False
    first_payload: bytes = b""

    def to_record(self) -> FlowRecord:
        """Freeze the connection into an immutable flow record."""
        return FlowRecord(
            fid=self.fid,
            start=self.start,
            end=self.last_seen,
            bytes_up=self.bytes_up,
            bytes_down=self.bytes_down,
            packets=self.packets,
        )


class TcpFlowTracker:
    """Track concurrent TCP connections and emit completed flow records.

    Connections are keyed by the normalized five-tuple.  A connection whose
    first observed segment is a SYN gets its client side from the SYN
    sender; mid-stream pickups (trace started after the handshake) fall
    back to "lower port is the server" heuristics, mirroring what passive
    monitors such as Tstat do.

    Args:
        idle_timeout: seconds of silence after which a connection is
            considered finished and flushed.
        capture_payload: bytes of the first client payload to retain for
            DPI baselines (0 disables).
    """

    def __init__(self, idle_timeout: float = 300.0, capture_payload: int = 64):
        self.idle_timeout = idle_timeout
        self.capture_payload = capture_payload
        self._active: dict[FiveTuple, TcpConnection] = {}
        self._completed: list[FlowRecord] = []
        self.stats = {"packets": 0, "midstream": 0, "flows": 0}

    def _normalize(self, packet: Packet) -> tuple[FiveTuple, bool]:
        """Return (five-tuple in client->server orientation, is_upstream)."""
        assert packet.tcp is not None
        src = packet.ipv4.src
        dst = packet.ipv4.dst
        sport = packet.tcp.src_port
        dport = packet.tcp.dst_port
        forward = FiveTuple(src, dst, sport, dport, TransportProto.TCP)
        reverse = FiveTuple(dst, src, dport, sport, TransportProto.TCP)
        if forward in self._active:
            return forward, True
        if reverse in self._active:
            return reverse, False
        if packet.tcp.is_syn:
            return forward, True
        if packet.tcp.is_synack:
            return reverse, False
        # Mid-stream: guess that the numerically lower port is the server.
        self.stats["midstream"] += 1
        if dport <= sport:
            return forward, True
        return reverse, False

    def feed(self, packet: Packet) -> Optional[FlowRecord]:
        """Consume one TCP packet; return a flow record if one completed."""
        if packet.tcp is None:
            raise ValueError("TcpFlowTracker.feed expects TCP packets")
        self.stats["packets"] += 1
        fid, upstream = self._normalize(packet)
        conn = self._active.get(fid)
        if conn is None:
            state = (
                TcpState.SYN_SEEN if packet.tcp.is_syn else TcpState.ESTABLISHED
            )
            conn = TcpConnection(
                fid=fid,
                state=state,
                start=packet.timestamp,
                last_seen=packet.timestamp,
            )
            self._active[fid] = conn
        conn.last_seen = packet.timestamp
        conn.packets += 1
        if conn.state is TcpState.SYN_SEEN and packet.tcp.is_synack:
            conn.state = TcpState.ESTABLISHED
        if packet.payload:
            if upstream:
                if not conn.first_payload and self.capture_payload:
                    conn.first_payload = packet.payload[: self.capture_payload]
                conn.bytes_up += len(packet.payload)
            else:
                conn.bytes_down += len(packet.payload)
        if packet.tcp.is_rst:
            return self._finish(fid)
        if packet.tcp.is_fin:
            if upstream:
                conn.fin_up = True
            else:
                conn.fin_down = True
            if conn.fin_up and conn.fin_down:
                return self._finish(fid)
            conn.state = TcpState.CLOSING
        return None

    def _finish(self, fid: FiveTuple) -> FlowRecord:
        conn = self._active.pop(fid)
        conn.state = TcpState.CLOSED
        record = conn.to_record()
        self.stats["flows"] += 1
        self._completed.append(record)
        return record

    def expire(self, now: float) -> list[FlowRecord]:
        """Flush connections idle longer than ``idle_timeout``."""
        stale = [
            fid
            for fid, conn in self._active.items()
            if now - conn.last_seen > self.idle_timeout
        ]
        return [self._finish(fid) for fid in stale]

    def flush(self) -> list[FlowRecord]:
        """Close every remaining connection (end of trace)."""
        return [self._finish(fid) for fid in list(self._active)]

    @property
    def active_count(self) -> int:
        """Connections currently being tracked."""
        return len(self._active)

    def completed(self) -> Iterator[FlowRecord]:
        """Iterate flow records completed so far."""
        return iter(self._completed)


def classify_port(dst_port: int, has_tls: bool = False) -> Protocol:
    """Rough layer-7 classification by destination port.

    Used as a fallback when no DPI ground truth is attached; the real
    classification in experiments comes from the simulator's labels.
    """
    if has_tls or dst_port in (443, 995, 993, 465, 5223):
        return Protocol.TLS
    if dst_port in (80, 8080, 3128):
        return Protocol.HTTP
    if dst_port in (25, 110, 143, 587):
        return Protocol.MAIL
    if dst_port in (1863, 5050, 5190, 5222, 5228):
        return Protocol.CHAT
    if dst_port in (554, 1935):
        return Protocol.STREAMING
    if dst_port == 53:
        return Protocol.DNS
    return Protocol.OTHER
