"""IPv4 addresses as plain integers.

DN-Hunter's resolver performs a map lookup per flow and per DNS answer, so
the address representation must be cheap to hash and compare.  We therefore
represent IPv4 addresses as ``int`` everywhere inside the library and only
convert to dotted-quad strings at the presentation boundary.  This module
collects the conversion helpers plus small network/pool abstractions used
by the synthetic internet's address plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MAX_IPV4 = 0xFFFFFFFF

_PRIVATE_RANGES = (
    (0x0A000000, 0x0AFFFFFF),  # 10.0.0.0/8
    (0xAC100000, 0xAC1FFFFF),  # 172.16.0.0/12
    (0xC0A80000, 0xC0A8FFFF),  # 192.168.0.0/16
)


def ip_from_str(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer address.

    Raises ``ValueError`` for anything that is not exactly four decimal
    octets in range.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Format integer address ``value`` as a dotted quad."""
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def is_private(value: int) -> bool:
    """Return True if ``value`` falls in an RFC 1918 private range."""
    return any(low <= value <= high for low, high in _PRIVATE_RANGES)


@dataclass(frozen=True)
class IPv4Network:
    """A CIDR block, e.g. ``IPv4Network.parse("192.0.2.0/24")``.

    The network is stored as (base address, prefix length); membership
    tests and enumeration are integer arithmetic.
    """

    base: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix}")
        if not 0 <= self.base <= MAX_IPV4:
            raise ValueError(f"invalid base address: {self.base}")
        if self.base & ~self.mask:
            raise ValueError("host bits set in network base address")

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        """Parse ``a.b.c.d/len`` notation."""
        addr, sep, prefix = text.partition("/")
        if not sep:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(ip_from_str(addr), int(prefix))

    @property
    def mask(self) -> int:
        """The netmask as an integer."""
        if self.prefix == 0:
            return 0
        return (MAX_IPV4 << (32 - self.prefix)) & MAX_IPV4

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    @property
    def last(self) -> int:
        """Highest address in the block."""
        return self.base | (~self.mask & MAX_IPV4)

    def __contains__(self, address: int) -> bool:
        return (address & self.mask) == self.base

    def address(self, index: int) -> int:
        """Return the ``index``-th address of the block."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside /{self.prefix} block")
        return self.base + index

    def subnets(self, new_prefix: int) -> list["IPv4Network"]:
        """Split into consecutive subnets of ``new_prefix``."""
        if new_prefix < self.prefix or new_prefix > 32:
            raise ValueError("new prefix must be >= current prefix and <= 32")
        step = 1 << (32 - new_prefix)
        return [
            IPv4Network(self.base + i * step, new_prefix)
            for i in range(1 << (new_prefix - self.prefix))
        ]

    def __str__(self) -> str:
        return f"{ip_to_str(self.base)}/{self.prefix}"


@dataclass
class IPv4Pool:
    """Sequential address allocator over one or more CIDR blocks.

    The synthetic internet carves each organization/CDN a set of blocks and
    allocates server addresses from them; the allocator is deterministic so
    traces are reproducible.
    """

    networks: list[IPv4Network] = field(default_factory=list)
    _next: int = 0

    @classmethod
    def from_cidrs(cls, *cidrs: str) -> "IPv4Pool":
        """Build a pool from dotted-quad CIDR strings."""
        return cls(networks=[IPv4Network.parse(c) for c in cidrs])

    @property
    def capacity(self) -> int:
        """Total number of allocatable addresses."""
        return sum(net.size for net in self.networks)

    @property
    def allocated(self) -> int:
        """Number of addresses handed out so far."""
        return self._next

    def allocate(self) -> int:
        """Return the next unused address, in block order."""
        index = self._next
        for net in self.networks:
            if index < net.size:
                self._next += 1
                return net.address(index)
            index -= net.size
        raise RuntimeError("address pool exhausted")

    def allocate_many(self, count: int) -> list[int]:
        """Allocate ``count`` consecutive addresses."""
        return [self.allocate() for _ in range(count)]

    def __contains__(self, address: int) -> bool:
        return any(address in net for net in self.networks)
