"""Flow-level data model: five-tuples, layer-7 protocols, flow records.

The paper's flow sniffer aggregates packets into layer-4 flows keyed by
``Fid = (clientIP, serverIP, sPort, dPort, protocol)`` (Sec. 3.1).  The
``FlowRecord`` here is the unit stored in the labeled-flows database after
the tagger has attached a FQDN.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.net.ip import ip_to_str


class TransportProto(enum.IntEnum):
    """IP protocol numbers for the transports we model."""

    TCP = 6
    UDP = 17


class Protocol(enum.Enum):
    """Layer-7 protocol classes used throughout the evaluation.

    The paper breaks hit ratios down by HTTP / TLS / P2P (Tab. 2); the
    remaining values cover the mail and messaging services of Tab. 6/7 and
    a catch-all OTHER.
    """

    HTTP = "http"
    TLS = "tls"
    P2P = "p2p"
    MAIL = "mail"
    CHAT = "chat"
    STREAMING = "streaming"
    DNS = "dns"
    OTHER = "other"


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """Flow identifier ``(clientIP, serverIP, sPort, dPort, protocol)``.

    ``client_ip``/``src_port`` always refer to the monitored-customer side,
    matching the paper's convention that the client initiates the flow.
    """

    client_ip: int
    server_ip: int
    src_port: int
    dst_port: int
    proto: TransportProto

    def __str__(self) -> str:
        return (
            f"{ip_to_str(self.client_ip)}:{self.src_port} -> "
            f"{ip_to_str(self.server_ip)}:{self.dst_port}/{self.proto.name}"
        )


@dataclass(slots=True)
class FlowRecord:
    """One reconstructed layer-4 flow, optionally tagged with a FQDN.

    Attributes:
        fid: the five-tuple identifying the flow.
        start: flow start time (seconds since trace epoch).
        end: flow end time; equal to ``start`` for degenerate flows.
        protocol: layer-7 classification (from DPI ground truth or the
            simulator, depending on the pipeline stage).
        bytes_up: client-to-server payload bytes.
        bytes_down: server-to-client payload bytes.
        fqdn: label attached by the flow tagger; ``None`` on cache miss.
        cert_name: server name observed in a TLS certificate, if any
            (used by the Tab. 4 baseline).
        true_fqdn: ground-truth FQDN from the simulator, used only for
            evaluation, never by the sniffer itself.
    """

    fid: FiveTuple
    start: float
    end: float = 0.0
    protocol: Protocol = Protocol.OTHER
    bytes_up: int = 0
    bytes_down: int = 0
    packets: int = 0
    fqdn: Optional[str] = None
    cert_name: Optional[str] = None
    true_fqdn: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            self.end = self.start

    @property
    def duration(self) -> float:
        """Flow duration in seconds."""
        return self.end - self.start

    @property
    def total_bytes(self) -> int:
        """Payload bytes in both directions."""
        return self.bytes_up + self.bytes_down

    @property
    def is_tagged(self) -> bool:
        """True when the flow tagger attached a FQDN."""
        return self.fqdn is not None


@dataclass(slots=True)
class DnsObservation:
    """A decoded DNS response as seen on the wire.

    This is the record the DNS response sniffer hands to the resolver:
    which client asked, what FQDN, and the answer list of server addresses.
    ``ttl`` is the minimum answer TTL (used by cache modelling), ``useless``
    marks responses never followed by a flow (ground truth for Tab. 9).
    """

    timestamp: float
    client_ip: int
    fqdn: str
    answers: list[int] = field(default_factory=list)
    ttl: int = 300
    useless: bool = False
