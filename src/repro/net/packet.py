"""Binary packet headers: Ethernet II, IPv4, UDP, TCP.

The synthetic traces can be rendered to real byte-level packets (and pcap
files) and parsed back, so the sniffer's packet path is exercised against
genuine wire formats rather than mock objects.  Only the fields the system
needs are modelled; options beyond the fixed headers are carried as opaque
bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.net.flow import TransportProto

ETHERTYPE_IPV4 = 0x0800
_ETH_FMT = struct.Struct("!6s6sH")
_IPV4_FMT = struct.Struct("!BBHHHBBH4s4s")
_UDP_FMT = struct.Struct("!HHHH")
_TCP_FMT = struct.Struct("!HHIIBBHHH")

# TCP flag bits
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


class PacketDecodeError(ValueError):
    """Raised when a buffer cannot be parsed as the expected header."""


def checksum16(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum over ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass(frozen=True, slots=True)
class EthernetHeader:
    """Ethernet II header (no VLAN tags)."""

    dst_mac: bytes
    src_mac: bytes
    ethertype: int = ETHERTYPE_IPV4

    def encode(self) -> bytes:
        return _ETH_FMT.pack(self.dst_mac, self.src_mac, self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> tuple["EthernetHeader", bytes]:
        if len(data) < _ETH_FMT.size:
            raise PacketDecodeError("truncated Ethernet header")
        dst, src, etype = _ETH_FMT.unpack_from(data)
        return cls(dst, src, etype), data[_ETH_FMT.size:]


@dataclass(frozen=True, slots=True)
class IPv4Header:
    """IPv4 header without options."""

    src: int
    dst: int
    proto: int
    total_length: int = 0
    ttl: int = 64
    ident: int = 0

    HEADER_LEN = _IPV4_FMT.size

    def encode(self, payload_len: int) -> bytes:
        total = self.HEADER_LEN + payload_len
        head = _IPV4_FMT.pack(
            (4 << 4) | 5,  # version 4, IHL 5 words
            0,
            total,
            self.ident,
            0,  # flags/fragment offset: never fragmented in our traces
            self.ttl,
            self.proto,
            0,  # checksum placeholder
            self.src.to_bytes(4, "big"),
            self.dst.to_bytes(4, "big"),
        )
        csum = checksum16(head)
        return head[:10] + struct.pack("!H", csum) + head[12:]

    @classmethod
    def decode(cls, data: bytes) -> tuple["IPv4Header", bytes]:
        if len(data) < cls.HEADER_LEN:
            raise PacketDecodeError("truncated IPv4 header")
        (
            ver_ihl,
            _tos,
            total,
            ident,
            _frag,
            ttl,
            proto,
            _csum,
            src,
            dst,
        ) = _IPV4_FMT.unpack_from(data)
        version = ver_ihl >> 4
        if version != 4:
            raise PacketDecodeError(f"not IPv4 (version={version})")
        ihl = (ver_ihl & 0x0F) * 4
        if ihl < cls.HEADER_LEN or len(data) < ihl:
            raise PacketDecodeError("bad IPv4 header length")
        if total < ihl or total > len(data):
            raise PacketDecodeError("bad IPv4 total length")
        header = cls(
            src=int.from_bytes(src, "big"),
            dst=int.from_bytes(dst, "big"),
            proto=proto,
            total_length=total,
            ttl=ttl,
            ident=ident,
        )
        return header, data[ihl:total]


@dataclass(frozen=True, slots=True)
class UdpHeader:
    """UDP header; checksum left zero (legal for IPv4)."""

    src_port: int
    dst_port: int

    HEADER_LEN = _UDP_FMT.size

    def encode(self, payload_len: int) -> bytes:
        return _UDP_FMT.pack(
            self.src_port, self.dst_port, self.HEADER_LEN + payload_len, 0
        )

    @classmethod
    def decode(cls, data: bytes) -> tuple["UdpHeader", bytes]:
        if len(data) < cls.HEADER_LEN:
            raise PacketDecodeError("truncated UDP header")
        sport, dport, length, _csum = _UDP_FMT.unpack_from(data)
        if length < cls.HEADER_LEN or length > len(data):
            raise PacketDecodeError("bad UDP length")
        return cls(sport, dport), data[cls.HEADER_LEN:length]


@dataclass(frozen=True, slots=True)
class TcpHeader:
    """TCP header without options; checksum not computed (passive sniffer)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    HEADER_LEN = _TCP_FMT.size

    def encode(self) -> bytes:
        return _TCP_FMT.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            (5 << 4),  # data offset 5 words, no options
            self.flags,
            self.window,
            0,
            0,
        )

    @classmethod
    def decode(cls, data: bytes) -> tuple["TcpHeader", bytes]:
        if len(data) < cls.HEADER_LEN:
            raise PacketDecodeError("truncated TCP header")
        (
            sport,
            dport,
            seq,
            ack,
            offset_rsvd,
            flags,
            window,
            _csum,
            _urg,
        ) = _TCP_FMT.unpack_from(data)
        offset = (offset_rsvd >> 4) * 4
        if offset < cls.HEADER_LEN or len(data) < offset:
            raise PacketDecodeError("bad TCP data offset")
        header = cls(sport, dport, seq, ack, flags, window)
        return header, data[offset:]

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TCP_SYN) and not self.flags & TCP_ACK

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & TCP_SYN) and bool(self.flags & TCP_ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCP_FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TCP_RST)


@dataclass(slots=True)
class Packet:
    """A decoded packet: timestamp plus parsed layer headers and payload."""

    timestamp: float
    ipv4: IPv4Header
    udp: Optional[UdpHeader] = None
    tcp: Optional[TcpHeader] = None
    payload: bytes = b""
    eth: Optional[EthernetHeader] = field(default=None, repr=False)

    @property
    def transport(self) -> Optional[TransportProto]:
        """Which transport this packet carries, if one we model."""
        if self.tcp is not None:
            return TransportProto.TCP
        if self.udp is not None:
            return TransportProto.UDP
        return None

    @property
    def src_port(self) -> int:
        head = self.tcp or self.udp
        if head is None:
            raise ValueError("packet has no transport header")
        return head.src_port

    @property
    def dst_port(self) -> int:
        head = self.tcp or self.udp
        if head is None:
            raise ValueError("packet has no transport header")
        return head.dst_port


_BROADCAST = b"\xff" * 6
_LOCAL_MAC = b"\x02\x00\x00\x00\x00\x01"


def build_udp_packet(
    timestamp: float,
    src: int,
    dst: int,
    src_port: int,
    dst_port: int,
    payload: bytes,
    with_ethernet: bool = True,
) -> bytes:
    """Encode a full UDP-in-IPv4(-in-Ethernet) frame."""
    udp = UdpHeader(src_port, dst_port)
    segment = udp.encode(len(payload)) + payload
    ip = IPv4Header(src=src, dst=dst, proto=TransportProto.UDP)
    datagram = ip.encode(len(segment)) + segment
    if not with_ethernet:
        return datagram
    return EthernetHeader(_BROADCAST, _LOCAL_MAC).encode() + datagram


def build_tcp_packet(
    timestamp: float,
    src: int,
    dst: int,
    src_port: int,
    dst_port: int,
    flags: int,
    seq: int = 0,
    ack: int = 0,
    payload: bytes = b"",
    with_ethernet: bool = True,
) -> bytes:
    """Encode a full TCP-in-IPv4(-in-Ethernet) frame."""
    tcp = TcpHeader(src_port, dst_port, seq=seq, ack=ack, flags=flags)
    segment = tcp.encode() + payload
    ip = IPv4Header(src=src, dst=dst, proto=TransportProto.TCP)
    datagram = ip.encode(len(segment)) + segment
    if not with_ethernet:
        return datagram
    return EthernetHeader(_BROADCAST, _LOCAL_MAC).encode() + datagram


def decode_frame(
    timestamp: float, data: bytes, with_ethernet: bool = True
) -> Packet:
    """Decode a raw frame into a :class:`Packet`.

    Non-IPv4 ethertypes and transports other than TCP/UDP raise
    :class:`PacketDecodeError`; a capture loop is expected to skip those.
    """
    eth = None
    if with_ethernet:
        eth, data = EthernetHeader.decode(data)
        if eth.ethertype != ETHERTYPE_IPV4:
            raise PacketDecodeError(f"unsupported ethertype {eth.ethertype:#x}")
    ipv4, rest = IPv4Header.decode(data)
    packet = Packet(timestamp=timestamp, ipv4=ipv4, eth=eth)
    if ipv4.proto == TransportProto.UDP:
        packet.udp, packet.payload = UdpHeader.decode(rest)
    elif ipv4.proto == TransportProto.TCP:
        packet.tcp, packet.payload = TcpHeader.decode(rest)
    else:
        raise PacketDecodeError(f"unsupported IP protocol {ipv4.proto}")
    return packet
