"""Network substrate: IPv4 utilities, packet headers, flows, TCP, pcap I/O.

This package provides the low-level plumbing DN-Hunter's sniffer consumes:
an integer-based IPv4 representation tuned for high-rate lookups, binary
encode/decode for Ethernet/IPv4/UDP/TCP headers, a five-tuple flow model,
a TCP connection tracker, and a classic-pcap reader/writer so synthetic
traces can round-trip through real capture files.
"""

from repro.net.ip import (
    IPv4Network,
    IPv4Pool,
    ip_from_str,
    ip_to_str,
    is_private,
)
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    Packet,
    TcpHeader,
    UdpHeader,
)

__all__ = [
    "IPv4Network",
    "IPv4Pool",
    "ip_from_str",
    "ip_to_str",
    "is_private",
    "FiveTuple",
    "FlowRecord",
    "Protocol",
    "TransportProto",
    "EthernetHeader",
    "IPv4Header",
    "TcpHeader",
    "UdpHeader",
    "Packet",
]
