"""Classic libpcap file format reader/writer.

Synthetic traces can be persisted as standard ``.pcap`` files (magic
0xA1B2C3D4, microsecond timestamps, LINKTYPE_ETHERNET or LINKTYPE_RAW) so
they can be inspected with external tools and re-read by the sniffer,
proving the packet path works on genuine capture files.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101

_GLOBAL_FMT = struct.Struct("<IHHiIII")
_RECORD_FMT = struct.Struct("<IIII")


class PcapFormatError(ValueError):
    """Raised on malformed pcap input."""


@dataclass(frozen=True, slots=True)
class PcapRecord:
    """One captured frame: timestamp (float seconds) and raw bytes."""

    timestamp: float
    data: bytes


class PcapWriter:
    """Stream frames into a classic pcap file.

    Usage::

        with PcapWriter(open(path, "wb"), linktype=LINKTYPE_ETHERNET) as out:
            out.write(timestamp, frame_bytes)
    """

    def __init__(
        self,
        fileobj: BinaryIO,
        linktype: int = LINKTYPE_ETHERNET,
        snaplen: int = 65535,
    ):
        self._file = fileobj
        self._file.write(
            _GLOBAL_FMT.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, linktype)
        )
        self.count = 0

    def write(self, timestamp: float, data: bytes) -> None:
        """Append one frame."""
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:  # guard against rounding to the next second
            seconds += 1
            micros -= 1_000_000
        self._file.write(
            _RECORD_FMT.pack(seconds, micros, len(data), len(data))
        )
        self._file.write(data)
        self.count += 1

    def write_all(self, records: Iterable[PcapRecord]) -> None:
        """Append many frames."""
        for record in records:
            self.write(record.timestamp, record.data)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Iterate frames out of a classic pcap file, handling byte order."""

    def __init__(self, fileobj: BinaryIO):
        self._file = fileobj
        header = fileobj.read(_GLOBAL_FMT.size)
        if len(header) < _GLOBAL_FMT.size:
            raise PcapFormatError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            self._endian = "<"
        elif magic == PCAP_MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise PcapFormatError(f"bad pcap magic {magic:#x}")
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.version = (fields[1], fields[2])
        self.snaplen = fields[5]
        self.linktype = fields[6]
        self._record = struct.Struct(self._endian + "IIII")

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            head = self._file.read(self._record.size)
            if not head:
                return
            if len(head) < self._record.size:
                raise PcapFormatError("truncated pcap record header")
            seconds, micros, caplen, origlen = self._record.unpack(head)
            if caplen > origlen or caplen > self.snaplen + 65535:
                raise PcapFormatError("implausible pcap record length")
            data = self._file.read(caplen)
            if len(data) < caplen:
                raise PcapFormatError("truncated pcap record body")
            yield PcapRecord(seconds + micros / 1_000_000, data)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_pcap(
    path: str,
    records: Iterable[PcapRecord],
    linktype: int = LINKTYPE_ETHERNET,
) -> int:
    """Write ``records`` to ``path``; return the number written."""
    with open(path, "wb") as handle:
        writer = PcapWriter(handle, linktype=linktype)
        writer.write_all(records)
        return writer.count


def read_pcap(path: str) -> list[PcapRecord]:
    """Read every record of the pcap file at ``path``."""
    with open(path, "rb") as handle:
        return list(PcapReader(handle))
