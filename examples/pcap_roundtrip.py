#!/usr/bin/env python
"""Wire-level round trip: synthetic trace -> pcap file -> packet sniffer.

Everything else in this repository uses the fast event path; this
example proves the packet path works on genuine capture bytes: the
trace is rendered to RFC-format DNS/TCP frames inside a classic pcap
file, read back, decoded, and pushed through the same resolver/tagger.
"""

import os
import tempfile

from repro.net.packet import PacketDecodeError, decode_frame
from repro.net.pcap import read_pcap, write_pcap
from repro.simulation import build_trace
from repro.sniffer import SnifferPipeline


def main() -> None:
    print("Building a small trace and rendering 400 flows to packets...")
    trace = build_trace("EU1-FTTH", seed=21)
    records = trace.to_packets(max_flows=400)

    path = os.path.join(tempfile.mkdtemp(), "synthetic.pcap")
    count = write_pcap(path, records)
    size_kb = os.path.getsize(path) / 1024
    print(f"  wrote {count} frames ({size_kb:.0f} KB) to {path}")

    print("Reading the pcap back and running the packet-path sniffer...")
    packets = []
    for record in read_pcap(path):
        try:
            packets.append(decode_frame(record.timestamp, record.data))
        except PacketDecodeError:
            continue
    pipeline = SnifferPipeline(clist_size=50_000, warmup=0.0)
    flows = pipeline.process_packets(packets)

    tagged = [f for f in flows if f.fqdn]
    print(f"  reconstructed {len(flows)} TCP flows, {len(tagged)} tagged")
    print("\nFirst five labels recovered from raw bytes:")
    for flow in tagged[:5]:
        print(f"  {flow.fid} -> {flow.fqdn}")
    os.remove(path)


if __name__ == "__main__":
    main()
