#!/usr/bin/env python
"""DNS cache-poisoning detection (the Sec. 4.1 extension, end to end).

A poisoning campaign rewrites responses for accounts.google.com to an
attacker block for 30 minutes mid-trace.  DN-Hunter's mapping history
knows which organizations have served that FQDN before, so the first
poisoned response raises an alert — while routine CDN churn stays quiet.
"""

from repro.analytics.anomaly import MappingAnomalyDetector
from repro.net.ip import ip_to_str
from repro.simulation import build_trace
from repro.simulation.poisoning import inject_poisoning

TARGET = "accounts.google.com"


def main() -> None:
    print("Building EU1-ADSL2 trace...")
    trace = build_trace("EU1-ADSL2", seed=7)
    target_hits = [
        o for o in trace.observations if o.fqdn == TARGET
    ]
    print(f"  {len(target_hits)} legitimate responses for {TARGET}")

    campaign = inject_poisoning(
        trace.observations,
        target_fqdn=TARGET,
        start=7200.0,
        end=9000.0,
        seed=5,
    )
    print(
        f"  injected campaign: {campaign.poisoned_observations} responses "
        f"redirected to {[ip_to_str(a) for a in campaign.attacker_addresses]}"
    )

    detector = MappingAnomalyDetector(
        ipdb=trace.internet.ipdb, min_history=3
    )
    alerts = []
    for observation in trace.observations:
        alert = detector.observe(observation)
        if alert is not None:
            alerts.append(alert)

    true_positives = [a for a in alerts if a.fqdn == TARGET]
    false_positives = [a for a in alerts if a.fqdn != TARGET]
    print(f"\n  alerts raised:   {len(alerts)}")
    print(f"  on the target:   {len(true_positives)}")
    print(f"  on other names:  {len(false_positives)} "
          f"(of {detector.history_size()} tracked FQDNs)")
    if true_positives:
        first = true_positives[0]
        print(f"\n  first alert: {first.describe()}")
        detected_delay = first.timestamp - campaign.start
        print(f"  detected {detected_delay:.0f}s into the campaign")


if __name__ == "__main__":
    main()
