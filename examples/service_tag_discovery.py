#!/usr/bin/env python
"""Automatic service-tag extraction (Sec. 4.3, Algorithm 4).

What runs on TCP port 1337?  The registry says nothing, DPI has no
signature — but the sub-domain tokens of the FQDNs resolved before the
flows spell it out.
"""

from repro.analytics.database import FlowDatabase
from repro.analytics.tags import ServiceTagExtractor
from repro.simulation import build_trace
from repro.sniffer import SnifferPipeline

PORTS_OF_INTEREST = (25, 110, 1337, 5222, 5228, 6969, 12043)


def main() -> None:
    print("Building US-3G trace...")
    trace = build_trace("US-3G", seed=7)
    pipeline = SnifferPipeline(clist_size=100_000)
    pipeline.process_trace(trace)
    database = FlowDatabase.from_flows(pipeline.tagged_flows)

    extractor = ServiceTagExtractor(database)
    print("\nPer-port service tags (Eq. 1 log score):")
    for port in PORTS_OF_INTEREST:
        tags = extractor.extract(port, k=5)
        rendered = ", ".join(f"({t.score:.0f}){t.token}" for t in tags)
        print(f"  port {port:5d}: {rendered or '(no labeled flows)'}")

    print("\nSkewedness: tokens covering 90% of port 25's total score:")
    for tag in extractor.top_fraction(25, fraction=0.9):
        print(f"  {tag.token:12s} score={tag.score:.1f} "
              f"clients={tag.client_count} flows={tag.flow_count}")

    print("\nEvery port with >=30 labeled flows, auto-tagged:")
    for port, tags in sorted(extractor.extract_all_ports(k=2, min_flows=30).items()):
        rendered = ", ".join(t.token for t in tags)
        print(f"  {port:5d}: {rendered}")


if __name__ == "__main__":
    main()
