#!/usr/bin/env python
"""The paper's motivating scenario: block Zynga, prioritize Dropbox.

Both services are encrypted and both run on Amazon EC2 — so neither DPI
signatures nor IP filters can separate them.  DN-Hunter's labels can,
and thanks to the DNS-response hook the verdict exists *before* the
first packet of the flow (pre-installed decisions cover even the TCP
handshake).
"""

from repro.net.flow import Protocol
from repro.simulation import build_trace
from repro.sniffer import PolicyAction, PolicyEnforcer, PolicyRule, SnifferPipeline


def main() -> None:
    policy = PolicyEnforcer()
    policy.add_rule(PolicyRule("zynga.com", PolicyAction.BLOCK))
    policy.add_rule(PolicyRule("*.zynga.com", PolicyAction.BLOCK))
    policy.add_rule(PolicyRule("*.dropbox.com", PolicyAction.PRIORITIZE))

    print("Building EU1-ADSL2 trace and enforcing policy inline...")
    trace = build_trace("EU1-ADSL2", seed=7)
    pipeline = SnifferPipeline(clist_size=100_000, policy=policy)
    pipeline.process_trace(trace)

    blocked = pipeline.blocked_flows
    zynga_blocked = [f for f in blocked if f.fqdn and "zynga" in f.fqdn]
    preinstalled = policy.stats["preinstalled_used"]

    print(f"\n  decisions taken:        {policy.stats['decisions']}")
    print(f"  flows blocked:          {len(blocked)} "
          f"({len(zynga_blocked)} labeled zynga)")
    print(f"  flows prioritized:      {policy.stats['prioritized']}")
    print(f"  pre-installed verdicts: {policy.preinstalled_count()} "
          f"(client,server) pairs armed before any flow began; "
          f"used for {preinstalled} untagged flows")

    # Show that IP-based filtering could NOT have done this: find an
    # Amazon server carrying both blocked and allowed traffic.
    amazon_servers_blocked = {f.fid.server_ip for f in blocked}
    both = [
        f for f in pipeline.tagged_flows
        if f.fid.server_ip in amazon_servers_blocked
        and f.fqdn
        and "zynga" not in f.fqdn
    ]
    if both:
        sample = both[0]
        print(
            f"\n  shared infrastructure: server of a blocked zynga flow "
            f"also serves {sample.fqdn} (allowed) — an IP blacklist "
            f"would have broken that service."
        )

    tls_blocked = [f for f in zynga_blocked if f.protocol is Protocol.TLS]
    print(
        f"\n  {len(tls_blocked)} of the blocked zynga flows were TLS — "
        f"invisible to DPI signatures, visible to DN-Hunter."
    )


if __name__ == "__main__":
    main()
