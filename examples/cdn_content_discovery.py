#!/usr/bin/env python
"""Untangling the web: spatial + content discovery (Sec. 4.1/4.2).

Two directions of the same question:
  * spatial — given an organization, which CDNs/servers deliver it?
  * content — given a CDN, which organizations does it host?
"""

from repro.analytics.content import ContentDiscovery
from repro.analytics.domain_tree import build_domain_tree
from repro.analytics.spatial import SpatialDiscovery
from repro.analytics.database import FlowDatabase
from repro.simulation import build_trace
from repro.sniffer import SnifferPipeline


def main() -> None:
    print("Building US-3G trace...")
    trace = build_trace("US-3G", seed=7)
    pipeline = SnifferPipeline(clist_size=100_000)
    pipeline.process_trace(trace)
    database = FlowDatabase.from_flows(pipeline.tagged_flows)
    ipdb = trace.internet.ipdb

    # -- Spatial discovery: who serves zynga.com? ---------------------------
    spatial = SpatialDiscovery(database, ipdb)
    report = spatial.discover("zynga.com")
    print(f"\nzynga.com is delivered by {len(report.server_set)} servers:")
    for share in report.ranked_cdns():
        print(
            f"  {share.organization:10s} {share.server_count:3d} servers, "
            f"{report.flow_share(share.organization):5.0%} of flows"
        )

    # -- The Fig. 8 token tree ----------------------------------------------
    tree = build_domain_tree(database, "zynga.com", ipdb)
    print("\nDomain structure (Fig. 8 style):")
    print(tree.render(max_depth=2))

    # -- Content discovery: what does Amazon EC2 host? ----------------------
    content = ContentDiscovery(database, ipdb)
    print("\nTop-10 organizations hosted on Amazon EC2 (Tab. 5 style):")
    for share in content.hosted_domains_of_cdn("amazon", k=10):
        print(
            f"  {share.domain:25s} {share.share:5.0%} of EC2 flows "
            f"({share.fqdn_count} FQDNs)"
        )

    common = content.common_domains(
        [s for s in database.servers() if ipdb.lookup(s) == "amazon"],
        [s for s in database.servers() if ipdb.lookup(s) == "akamai"],
    )
    print(f"\nOrganizations using BOTH Amazon and Akamai: {sorted(common)}")


if __name__ == "__main__":
    main()
