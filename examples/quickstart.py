#!/usr/bin/env python
"""Quickstart: build a synthetic ISP trace, run DN-Hunter, inspect labels.

This walks the full pipeline of the paper's Fig. 1 on a small trace:
DNS responses feed the resolver replica, flows get tagged with the FQDN
the client resolved, and the labeled database answers questions that
neither port numbers nor server IPs could.
"""

from repro.analytics.database import FlowDatabase
from repro.net.flow import Protocol
from repro.net.ip import ip_to_str
from repro.simulation import build_trace
from repro.sniffer import SnifferPipeline


def main() -> None:
    print("Building the EU1-FTTH trace (synthetic stand-in, ~10k flows)...")
    trace = build_trace("EU1-FTTH", seed=7)
    print(f"  {len(trace.flows)} flows, {len(trace.observations)} DNS responses\n")

    pipeline = SnifferPipeline(clist_size=50_000)
    pipeline.process_trace(trace)

    print("Per-protocol tagging success (Tab. 2 view):")
    for protocol, (hits, total) in sorted(
        pipeline.hit_counts_by_protocol().items(), key=lambda kv: kv[0].value
    ):
        print(f"  {protocol.value:10s} {hits:6d}/{total:<6d} ({hits/total:.0%})")

    database = FlowDatabase.from_flows(pipeline.tagged_flows)
    print(f"\nLabeled database: {len(database)} flows, "
          f"{len(database.fqdns())} distinct FQDNs, "
          f"{len(database.servers())} distinct servers")

    print("\nSample TLS flows with their DN-Hunter labels")
    print("(a DPI box would only see ports and ciphertext):")
    shown = 0
    for flow in database:
        if flow.protocol is Protocol.TLS and flow.fqdn and shown < 8:
            print(
                f"  {ip_to_str(flow.fid.client_ip):>12s} -> "
                f"{ip_to_str(flow.fid.server_ip):>15s}:{flow.fid.dst_port}"
                f"  label={flow.fqdn}"
            )
            shown += 1

    example = next(
        (f for f in database if f.fqdn and "zynga" in f.fqdn), None
    )
    if example:
        servers = database.servers_for_domain("zynga.com")
        print(
            f"\nzynga.com is served by {len(servers)} distinct serverIPs "
            f"in this trace — the 'tangled web' the paper unwinds."
        )


if __name__ == "__main__":
    main()
