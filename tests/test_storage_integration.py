"""Durable-ingest wiring: pipeline → store → CLIs → experiments.

The tentpole claim is end-to-end: tagged flows stream out of the
sniffer (single-process or fan-out workers) as binary batches, spill
to segments on disk, and the reopened directory serves the analytics
and the experiment runner with answers identical to the in-memory
path.

The CLIs are exercised both in-process (``main(argv)``, fast) and as
real ``python -m`` subprocesses — the latter never depends on
installed console-script entry points, so CLI coverage holds in a
plain source checkout.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analytics.database import FlowDatabase
from repro.analytics.flowstore_cli import main as flowstore_main
from repro.analytics.storage import FlowStore
from repro.net.flow import DnsObservation, FiveTuple, FlowRecord, Protocol, TransportProto
from repro.sniffer.pipeline import SnifferPipeline

_SRC = Path(__file__).resolve().parent.parent / "src"


def _run_module(module: str, *args: str) -> subprocess.CompletedProcess:
    """Run a repro CLI exactly as documented: ``python -m <module>``.

    ``PYTHONPATH`` points at the source tree explicitly, so this works
    in a checkout without any installed entry points (and therefore
    cannot silently skip).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True, text=True, env=env, timeout=300,
    )


def _events(n_clients=6, flows_per_client=30):
    """A tiny deterministic event stream: DNS then flows per client."""
    events = []
    timestamp = 0.0
    for client in range(1, n_clients + 1):
        server = 0x0A000000 + client
        events.append(DnsObservation(
            timestamp=timestamp,
            client_ip=client,
            fqdn=f"host{client}.example{client % 3}.com",
            answers=[server],
        ))
        for index in range(flows_per_client):
            timestamp += 1.0
            events.append(FlowRecord(
                fid=FiveTuple(client, server, 1024 + index, 443,
                              TransportProto.TCP),
                start=timestamp,
                end=timestamp + 0.5,
                protocol=Protocol.TLS,
                bytes_up=100,
                bytes_down=1000,
                packets=4,
            ))
    return events


class TestPipelineDurableIngest:
    def test_single_process_spills_and_reopens(self, tmp_path):
        events = _events()
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0, batch_events=64,
            flow_store=FlowStore(tmp_path / "store", spill_rows=32),
        )
        pipeline.process_events(events)
        pipeline.close()
        mem = FlowDatabase.from_flows(pipeline.tagged_flows)
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened.segments) >= 2
        assert len(reopened) == len(mem)
        assert reopened.tagged_count == mem.tagged_count
        assert reopened.fqdns() == mem.fqdns()
        assert reopened.fqdn_server_counts() == mem.fqdn_server_counts()
        assert list(reopened) == list(mem)

    def test_retain_flows_false_bounds_the_in_process_list(self, tmp_path):
        """Multi-day mode: drained flows leave tagged_flows, the store
        still receives every flow exactly once."""
        events = _events()
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0, batch_events=32,
            flow_store=FlowStore(tmp_path / "store", spill_rows=32),
            retain_flows=False,
        )
        half = len(events) // 2
        pipeline.process_events(events[:half])
        assert len(pipeline.tagged_flows) < half  # drained prefix dropped
        pipeline.process_events(events[half:])
        pipeline.close()
        single = SnifferPipeline(clist_size=1000, warmup=0.0)
        single.process_events(events)
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened) == len(single.tagged_flows)
        assert reopened.tagged_count == sum(
            1 for flow in single.tagged_flows if flow.fqdn
        )

    def test_retain_flows_false_requires_flow_store(self):
        with pytest.raises(ValueError):
            SnifferPipeline(retain_flows=False)

    def test_single_call_commits_segments_mid_stream(self, tmp_path):
        """One long processing call must not defer all durability to
        its end: by the time the stream's last event is produced,
        earlier flows are already committed (visible to a reopen)."""
        events = _events()
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0, batch_events=8,
            flow_store=FlowStore(tmp_path / "store", spill_rows=16),
        )
        committed_mid_stream = []

        def stream():
            for index, event in enumerate(events):
                if index == len(events) - 1:
                    committed_mid_stream.append(
                        len(FlowStore(tmp_path / "store"))
                    )
                yield event

        pipeline.process_events(stream())
        pipeline.close()
        assert committed_mid_stream[0] > 0
        assert len(FlowStore(tmp_path / "store")) == len(
            pipeline.tagged_flows
        )

    def test_fanout_feed_path_drains_periodically(self, tmp_path):
        """Worker tagged-batch buffers must drain to the store during
        feeding, not only at collect()/close()."""
        from repro.sniffer.fanout import FanoutPipeline

        events = _events()
        store = FlowStore(tmp_path / "store", spill_rows=16)
        fanout = FanoutPipeline(
            processes=2, clist_size=1000, warmup=0.0, batch_events=16,
            flow_store=store,
        )
        assert fanout._drain_interval >= 1
        fanout._drain_interval = 1  # every dispatch, to keep the test small
        with fanout:
            fanout.feed_events(events)
            rows_before_collect = len(store)
            report = fanout.collect()
        assert rows_before_collect > 0
        assert len(store) == report.flows

    def test_incremental_drains_store_each_flow_once(self, tmp_path):
        events = _events()
        half = len(events) // 2
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0,
            flow_store=tmp_path / "store",  # path form opens a store
        )
        pipeline.process_events(events[:half])
        pipeline.process_events(events[half:])
        pipeline.close()
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened) == len(pipeline.tagged_flows)

    def test_fanout_streams_worker_batches_to_disk(self, tmp_path):
        events = _events()
        single = SnifferPipeline(clist_size=1000, warmup=0.0)
        single.process_events(events)
        mem = FlowDatabase.from_flows(single.tagged_flows)
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0, processes=2,
            flow_store=FlowStore(tmp_path / "store", spill_rows=64),
        )
        assert pipeline.collect_flows  # implied by durable ingest
        pipeline.process_events(events)
        pipeline.close()
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened) == len(mem)
        assert reopened.tagged_count == mem.tagged_count
        # Worker sharding reorders rows, so compare label-wise.
        assert sorted(reopened.fqdns()) == sorted(mem.fqdns())
        assert {
            (reopened.fqdn_label(f), s, c)
            for f, s, c in reopened.fqdn_server_counts()
        } == {
            (mem.fqdn_label(f), s, c)
            for f, s, c in mem.fqdn_server_counts()
        }
        assert reopened.count_by_protocol() == mem.count_by_protocol()
        assert reopened.time_span() == mem.time_span()

    def test_fanout_pipeline_direct_flow_store(self, tmp_path):
        from repro.sniffer.fanout import FanoutPipeline

        events = _events()
        fanout = FanoutPipeline(
            processes=2, clist_size=1000, warmup=0.0,
            flow_store=FlowStore(tmp_path / "store", spill_rows=64),
        )
        assert fanout.collect_flows
        with fanout:
            fanout.feed_events(events)
            report = fanout.collect()
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened) == report.flows
        assert reopened.tagged_count == report.tagged_flows


class TestFlowDatabaseSpillConstructor:
    def test_spill_dir_builds_a_flow_store(self, tmp_path):
        store = FlowDatabase(spill_dir=tmp_path / "db", spill_rows=4)
        assert isinstance(store, FlowStore)
        assert store.spill_rows == 4

    def test_plain_constructor_unchanged(self):
        database = FlowDatabase()
        assert isinstance(database, FlowDatabase)
        assert len(database) == 0


class TestFlowstoreCli:
    def _seed_store(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=16)
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0, batch_events=32,
            flow_store=store,
        )
        pipeline.process_events(_events())
        pipeline.close()
        return tmp_path / "store"

    def test_inspect_and_verify(self, tmp_path, capsys):
        directory = self._seed_store(tmp_path)
        assert flowstore_main(["inspect", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "rows" in out and "seg-00000001.fseg" in out
        assert flowstore_main(["verify", str(directory)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_compact_subcommand(self, tmp_path, capsys):
        directory = self._seed_store(tmp_path)
        before = len(FlowStore(directory).segments)
        assert before >= 2
        assert flowstore_main(["compact", str(directory)]) == 0
        assert "compacted" in capsys.readouterr().out
        store = FlowStore(directory)
        assert len(store.segments) == 1
        assert len(store) == sum(s.n_rows for s in store.segments)

    def test_corrupt_store_errors_cleanly(self, tmp_path, capsys):
        """--strict restores the PR5 hard-fail; the default open
        quarantines the corrupt segment, reports degraded health, and
        verify exits non-zero on it."""
        directory = self._seed_store(tmp_path)
        segment = sorted(directory.glob("seg-*.fseg"))[0]
        segment.write_bytes(segment.read_bytes()[:20])
        assert flowstore_main(
            ["inspect", "--strict", str(directory)]
        ) == 1
        assert "error:" in capsys.readouterr().err
        assert flowstore_main(["inspect", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "health     : degraded" in out
        assert segment.name in out
        assert flowstore_main(["verify", str(directory)]) == 1
        assert "degraded" in capsys.readouterr().err

    def test_missing_directory_is_an_error_not_an_empty_store(
        self, tmp_path, capsys
    ):
        """A mistyped path must not be silently created and reported
        as a healthy empty store by the read-only commands."""
        missing = tmp_path / "typo"
        for command in ("inspect", "stats", "prune-report", "verify",
                        "compact"):
            assert flowstore_main([command, str(missing)]) == 1
            assert "no flow store" in capsys.readouterr().err
            assert not missing.exists()

    def test_stats_emits_machine_readable_metadata(
        self, tmp_path, capsys
    ):
        directory = self._seed_store(tmp_path)
        assert flowstore_main(["stats", str(directory)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == sum(
            segment["rows"] for segment in payload["segments"]
        )
        for segment in payload["segments"]:
            assert segment["version"] == 2
            meta = segment["meta"]
            assert meta["min_start"] <= meta["max_start"]
            assert meta["fqdn_filter_bits"] >= 64

    def test_prune_report_subcommand(self, tmp_path, capsys):
        directory = self._seed_store(tmp_path)
        assert flowstore_main([
            "prune-report", str(directory),
            "--t0", "1e9", "--t1", "2e9",
        ]) == 0
        out = capsys.readouterr().out
        assert "would scan 0 of" in out  # window beyond the trace
        assert flowstore_main([
            "prune-report", str(directory), "--fqdn", "host1.example1.com",
        ]) == 0
        assert "would scan" in capsys.readouterr().out
        # Protocol probe: the synthetic stream is pure TLS, so a P2P
        # probe prunes every segment and an unknown name is an error.
        assert flowstore_main([
            "prune-report", str(directory), "--protocol", "p2p",
        ]) == 0
        assert "would scan 0 of" in capsys.readouterr().out
        assert flowstore_main([
            "prune-report", str(directory), "--protocol", "NOPE",
        ]) == 1
        assert "unknown protocol" in capsys.readouterr().err
        # --t0 without --t1 is a usage error, not a silent full scan.
        assert flowstore_main([
            "prune-report", str(directory), "--t0", "5",
        ]) == 1
        assert "together" in capsys.readouterr().err
        # Regression: an inverted window is a usage error too, not a
        # report that happily "prunes" 100% of the store.
        assert flowstore_main([
            "prune-report", str(directory), "--t0", "5", "--t1", "1",
        ]) == 1
        assert "--t0 must be <= --t1" in capsys.readouterr().err

    def test_verify_parallel_matches_serial(self, tmp_path, capsys):
        directory = self._seed_store(tmp_path)
        assert flowstore_main(["verify", str(directory)]) == 0
        serial = capsys.readouterr().out
        assert flowstore_main([
            "verify", str(directory), "--parallel", "4",
        ]) == 0
        assert capsys.readouterr().out == serial
        # Zero/negative worker counts error out (same contract as
        # FlowStore(parallel=...)) instead of silently running serial.
        for bad in ("0", "-2"):
            assert flowstore_main([
                "verify", str(directory), "--parallel", bad,
            ]) == 1
            assert "must be positive" in capsys.readouterr().err


class TestStoredDatasetSource:
    @pytest.fixture()
    def stored_root(self, tmp_path):
        from repro.experiments import datasets

        yield tmp_path / "datasets"
        datasets.set_stored_root(None)

    def test_ingest_trace_then_experiments_ride_the_store(
        self, stored_root, capsys
    ):
        from repro.experiments import datasets

        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(stored_root),
            "--spill-rows", "4096",
        ]) == 0
        assert "stored" in capsys.readouterr().out
        datasets.set_stored_root(stored_root)
        result = datasets.get_result("EU1-FTTH")
        assert isinstance(result.database, FlowStore)
        datasets.set_stored_root(None)
        mem = datasets.get_result("EU1-FTTH")
        assert isinstance(mem.database, FlowDatabase)
        # The analytics layer sees identical data either way.
        from repro.analytics.tangle import (
            fanin_distribution,
            fanout_distribution,
        )

        datasets.set_stored_root(stored_root)
        stored = datasets.get_result("EU1-FTTH")
        # Store-served results skip the sniffer run; it only happens
        # lazily if an experiment asks for pipeline statistics.
        assert stored._pipeline is None
        assert fanout_distribution(stored.database).values == (
            fanout_distribution(mem.database).values
        )
        assert fanin_distribution(stored.database).values == (
            fanin_distribution(mem.database).values
        )
        assert stored.pipeline.tagger.stats.hits  # lazy run works

    def test_missing_store_falls_back_to_memory(self, stored_root):
        from repro.experiments import datasets

        stored_root.mkdir(parents=True, exist_ok=True)
        datasets.set_stored_root(stored_root)
        result = datasets.get_result("EU1-FTTH")
        assert isinstance(result.database, FlowDatabase)

    def test_seed_mismatch_falls_back_to_memory(self, stored_root, capsys):
        """A store ingested with one seed must not serve a request for
        another — that would silently mix two datasets."""
        from repro.experiments import datasets

        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(stored_root),
        ]) == 0
        capsys.readouterr()
        datasets.set_stored_root(stored_root)
        assert datasets.stored_database("EU1-FTTH") is not None
        assert datasets.stored_database("EU1-FTTH", seed=99) is None

    def test_building_marker_rejects_partial_store(self, stored_root):
        """A crash mid-ingest leaves the sidecar marked building; such
        a store must not serve experiments."""
        import json as json_mod

        from repro.experiments import datasets

        directory = stored_root / "EU1-FTTH"
        store = FlowStore(directory, spill_rows=4)
        store.add_all(
            FlowRecord(
                fid=FiveTuple(1, 2, 3, 443, TransportProto.TCP),
                start=float(i), end=float(i), protocol=Protocol.TLS,
                bytes_up=1, bytes_down=1, packets=1,
                fqdn="a.example.com",
            )
            for i in range(9)
        )
        store.close()
        (directory / "DATASET.json").write_text(json_mod.dumps({
            "trace": "EU1-FTTH", "seed": 7, "building": True,
        }))
        datasets.set_stored_root(stored_root)
        assert datasets.stored_database("EU1-FTTH") is None

    def test_ingest_trace_refuses_rerun_without_force(
        self, stored_root, capsys
    ):
        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(stored_root),
        ]) == 0
        rows = len(FlowStore(stored_root / "EU1-FTTH"))
        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(stored_root),
        ]) == 1
        assert "--force" in capsys.readouterr().err
        assert len(FlowStore(stored_root / "EU1-FTTH")) == rows
        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(stored_root), "--force",
        ]) == 0
        assert len(FlowStore(stored_root / "EU1-FTTH")) == rows


class TestSnifferCliFlowStore:
    def test_pcap_flow_store_flag(self, tmp_path, capsys):
        from repro.net.pcap import write_pcap
        from repro.simulation import build_trace
        from repro.sniffer.cli import main as sniff_main

        trace = build_trace("EU1-FTTH", seed=19)
        pcap = tmp_path / "capture.pcap"
        write_pcap(str(pcap), trace.to_packets(max_flows=60))
        code = sniff_main([
            str(pcap), "--warmup", "0", "--flow-store",
            str(tmp_path / "store"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flow store" in out
        store = FlowStore(tmp_path / "store")
        assert len(store) >= 1
        assert store.tagged_count >= 1
        assert store.fqdns()  # labels made it to disk


class TestRunnerFlowStoreFlag:
    def test_runner_accepts_flow_store(self, tmp_path, capsys):
        from repro.experiments import datasets
        from repro.experiments.runner import main as runner_main

        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(tmp_path / "root"),
        ]) == 0
        capsys.readouterr()
        try:
            code = runner_main([
                "--flow-store", str(tmp_path / "root"), "table6",
            ])
        finally:
            datasets.set_stored_root(None)
        assert code == 0
        assert "Table 6" in capsys.readouterr().out

    def test_runner_parallel_matches_serial(self, tmp_path, capsys):
        """--parallel N serves experiments from a threaded store with
        output identical to the serial store."""
        from repro.experiments import datasets
        from repro.experiments.runner import main as runner_main

        assert flowstore_main([
            "ingest-trace", "EU1-FTTH", str(tmp_path / "root"),
            "--spill-rows", "2048",
        ]) == 0
        capsys.readouterr()
        outputs = []
        try:
            for argv in (
                ["--flow-store", str(tmp_path / "root"), "table6"],
                ["--flow-store", str(tmp_path / "root"),
                 "--parallel", "2", "table6"],
            ):
                assert runner_main(argv) == 0
                # Strip the trailing timing line — wall clock differs.
                outputs.append([
                    line for line in capsys.readouterr().out.splitlines()
                    if not line.startswith("[table6 completed")
                ])
        finally:
            datasets.set_stored_root(None)
        assert outputs[0] == outputs[1]
        store = datasets.stored_database("EU1-FTTH")
        assert store is None  # root reset

    def test_parallel_requires_flow_store(self, capsys):
        from repro.experiments.runner import main as runner_main

        with pytest.raises(SystemExit):
            runner_main(["--parallel", "2", "table6"])
        assert "--flow-store" in capsys.readouterr().err

    def test_parallel_must_be_positive(self, tmp_path, capsys):
        """A bad worker count is a usage error, not a mid-experiment
        traceback out of FlowStore's constructor."""
        from repro.experiments.runner import main as runner_main

        for bad in ("0", "-3"):
            with pytest.raises(SystemExit):
                runner_main([
                    "--flow-store", str(tmp_path), "--parallel", bad,
                    "table6",
                ])
            assert "must be positive" in capsys.readouterr().err

    def test_list_does_not_leak_stored_root(self, tmp_path):
        """`runner list --flow-store DIR` must not leave the global
        stored root set for later in-process callers."""
        from repro.experiments import datasets
        from repro.experiments.runner import main as runner_main

        assert runner_main([
            "--flow-store", str(tmp_path / "nowhere"), "list",
        ]) == 0
        assert datasets._STORED_ROOT is None


class TestModuleCliInvocation:
    """The CLIs run as ``python -m`` subprocesses — no installed entry
    points required, so these assertions can never be skipped."""

    def _store_dir(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=16)
        pipeline = SnifferPipeline(
            clist_size=1000, warmup=0.0, batch_events=32,
            flow_store=store,
        )
        pipeline.process_events(_events())
        pipeline.close()
        return tmp_path / "store"

    def test_flowstore_cli_inspect_verify_stats(self, tmp_path):
        directory = str(self._store_dir(tmp_path))
        result = _run_module(
            "repro.analytics.flowstore_cli", "inspect", directory
        )
        assert result.returncode == 0, result.stderr
        assert "seg-00000001.fseg" in result.stdout
        result = _run_module(
            "repro.analytics.flowstore_cli", "verify", directory,
            "--parallel", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "verified" in result.stdout
        result = _run_module(
            "repro.analytics.flowstore_cli", "stats", directory
        )
        assert result.returncode == 0, result.stderr
        assert json.loads(result.stdout)["segments"]

    def test_flowstore_cli_prune_report_and_errors(self, tmp_path):
        directory = str(self._store_dir(tmp_path))
        result = _run_module(
            "repro.analytics.flowstore_cli", "prune-report", directory,
            "--t0", "1e9", "--t1", "2e9",
        )
        assert result.returncode == 0, result.stderr
        assert "would scan 0 of" in result.stdout
        result = _run_module(
            "repro.analytics.flowstore_cli", "inspect",
            str(tmp_path / "missing"),
        )
        assert result.returncode == 1
        assert "no flow store" in result.stderr

    def test_experiments_runner_module(self):
        result = _run_module("repro.experiments.runner", "list")
        assert result.returncode == 0, result.stderr
        assert "table6" in result.stdout

    def test_sniffer_cli_module(self):
        result = _run_module("repro.sniffer.cli", "--help")
        assert result.returncode == 0, result.stderr
        assert "--flow-store" in result.stdout


def test_manifest_is_human_readable(tmp_path):
    store = FlowStore(tmp_path / "store", spill_rows=4)
    store.add_all(
        FlowRecord(
            fid=FiveTuple(1, 2, 3, 443, TransportProto.TCP),
            start=float(i), end=float(i), protocol=Protocol.TLS,
            bytes_up=1, bytes_down=1, packets=1, fqdn="a.example.com",
        )
        for i in range(9)
    )
    store.close()
    manifest = json.loads(
        (tmp_path / "store" / "MANIFEST.json").read_text()
    )
    assert manifest["format"] == 2
    assert [entry["name"] for entry in manifest["segments"]] == [
        "seg-00000001.fseg", "seg-00000002.fseg", "seg-00000003.fseg",
    ]
    # The manifest carries a summary of each footer's pruning metadata
    # (ranges/mask/filter sizes; the bitmaps live only in the footer).
    for entry in manifest["segments"]:
        meta = entry["meta"]
        assert meta["min_start"] <= meta["max_start"]
        assert meta["protocol_mask"] > 0
        assert meta["fqdn_filter_bits"] >= 64


def test_manifest_meta_round_trips_the_footer(tmp_path):
    """The promoted manifest copy must decode back to the exact
    footer — this is what lets the shard coordinator prune from
    manifest bytes alone."""
    from repro.analytics.storage import SegmentMeta

    store = FlowStore(tmp_path / "store", spill_rows=4)
    store.add_all(
        FlowRecord(
            fid=FiveTuple(i, 2 + i, 3, 443, TransportProto.TCP),
            start=float(i), end=float(i), protocol=Protocol.TLS,
            bytes_up=1, bytes_down=1, packets=1,
            fqdn=f"h{i}.example{i % 2}.org",
        )
        for i in range(9)
    )
    store.close()
    manifest = json.loads(
        (tmp_path / "store" / "MANIFEST.json").read_text()
    )
    store = FlowStore(tmp_path / "store")
    by_name = {reader.name: reader for reader in store._segments}
    for entry in manifest["segments"]:
        rebuilt = SegmentMeta.from_manifest(entry["meta"])
        assert rebuilt is not None
        assert rebuilt == by_name[entry["name"]].meta
    store.close()
    # Malformed/legacy entries degrade to "unprunable", never crash.
    assert SegmentMeta.from_manifest(None) is None
    assert SegmentMeta.from_manifest({"min_start": 0.0}) is None
    legacy = dict(manifest["segments"][0]["meta"])
    del legacy["fqdn_filter"]
    assert SegmentMeta.from_manifest(legacy) is None
    tampered = dict(manifest["segments"][0]["meta"])
    tampered["sld_filter"] = "!!!not base64!!!"
    assert SegmentMeta.from_manifest(tampered) is None


class TestStatsSealRace:
    """Regression: ``stats()``/``prune_report()`` used to walk the
    live ``self._segments`` list without the store mutex — a
    concurrent seal could tear the payload (segment listing computed
    at one instant, ``sealed_rows`` summed at another)."""

    def _spin_writer(self, store, n_rows):
        import threading

        def writer():
            for i in range(n_rows):
                store.add(FlowRecord(
                    fid=FiveTuple(i % 7, 10 + i % 5, 3, 443,
                                  TransportProto.TCP),
                    start=float(i), end=float(i) + 0.5,
                    protocol=Protocol.TLS, bytes_up=1, bytes_down=1,
                    packets=1, fqdn=f"h{i % 11}.example.com",
                ))

        thread = threading.Thread(target=writer)
        thread.start()
        return thread

    def test_stats_never_tears_under_a_seal_loop(self, tmp_path):
        from repro.analytics.storage import QueryHint

        store = FlowStore(tmp_path / "store", spill_rows=1, wal=False)
        thread = self._spin_writer(store, 400)
        try:
            while thread.is_alive():
                payload = store.stats()
                listed = sum(s["rows"] for s in payload["segments"])
                assert payload["sealed_rows"] == listed
                assert payload["rows"] == (
                    payload["sealed_rows"] + payload["tail_rows"]
                )
                assert sum(payload["segment_versions"].values()) == len(
                    payload["segments"]
                )
                report = store.prune_report(QueryHint(window=(0.0, 1e9)))
                names = [s["name"] for s in report["segments"]]
                assert len(names) == len(set(names))
                assert report["scanned_rows"] + report["pruned_rows"] == sum(
                    s["rows"] for s in report["segments"]
                )
        finally:
            thread.join()
        final = store.stats()
        assert final["rows"] == 400
        store.close()
