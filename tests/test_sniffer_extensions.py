"""Tests for the paper's sketched extensions: multi-label lookup,
client sharding, and the DNSCrypt limitation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import DnsObservation, FiveTuple, FlowRecord, Protocol, TransportProto
from repro.sniffer.resolver import DnsResolver
from repro.sniffer.sharding import ShardedResolver

C1, C2 = 0x0A000001, 0x0A000102
S1, S2 = 0xD0000001, 0xD0000002


class TestMultiLabel:
    def test_disabled_by_default(self):
        resolver = DnsResolver(clist_size=8)
        resolver.insert(C1, "a.com", [S1])
        resolver.insert(C1, "b.com", [S1])
        assert resolver.lookup_all(C1, S1) == ["b.com"]

    def test_superseded_labels_retained(self):
        resolver = DnsResolver(clist_size=8, multi_label_depth=2)
        resolver.insert(C1, "a.com", [S1])
        resolver.insert(C1, "b.com", [S1])
        resolver.insert(C1, "c.com", [S1])
        assert resolver.lookup_all(C1, S1) == ["c.com", "b.com", "a.com"]
        # lookup() still returns last-written-wins.
        assert resolver.peek(C1, S1) == "c.com"

    def test_depth_bounds_history(self):
        resolver = DnsResolver(clist_size=16, multi_label_depth=1)
        for name in ("a.com", "b.com", "c.com", "d.com"):
            resolver.insert(C1, name, [S1])
        assert resolver.lookup_all(C1, S1) == ["d.com", "c.com"]

    def test_same_fqdn_not_duplicated(self):
        resolver = DnsResolver(clist_size=8, multi_label_depth=3)
        resolver.insert(C1, "a.com", [S1])
        resolver.insert(C1, "a.com", [S1])
        resolver.insert(C1, "b.com", [S1])
        assert resolver.lookup_all(C1, S1) == ["b.com", "a.com"]

    def test_unknown_key_empty(self):
        resolver = DnsResolver(clist_size=8, multi_label_depth=2)
        assert resolver.lookup_all(C1, S1) == []

    def test_eviction_clears_history(self):
        resolver = DnsResolver(clist_size=2, multi_label_depth=2)
        resolver.insert(C1, "a.com", [S1])
        resolver.insert(C1, "b.com", [S1])   # history: a.com
        resolver.insert(C1, "x.com", [S2])
        resolver.insert(C2, "y.com", [S2])   # wraps: evicts b.com's slot
        resolver.insert(C2, "z.com", [S1])
        assert "a.com" not in resolver.lookup_all(C1, S1)
        resolver.check_invariants()

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DnsResolver(clist_size=4, multi_label_depth=-1)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 5), st.integers(0, 3)),
            max_size=80,
        )
    )
    def test_first_label_matches_plain_lookup(self, operations):
        plain = DnsResolver(clist_size=6)
        multi = DnsResolver(clist_size=6, multi_label_depth=3)
        for client, fqdn_id, server in operations:
            plain.insert(client, f"s{fqdn_id}.com", [server])
            multi.insert(client, f"s{fqdn_id}.com", [server])
        for client in range(3):
            for server in range(4):
                labels = multi.lookup_all(client, server)
                expected = plain.peek(client, server)
                assert (labels[0] if labels else None) == expected
        multi.check_invariants()


class TestShardedResolver:
    def test_routing_by_low_octet(self):
        sharded = ShardedResolver(shards=2, clist_size=100)
        even, odd = 0x0A000002, 0x0A000003
        sharded.insert(even, "even.com", [S1])
        sharded.insert(odd, "odd.com", [S1])
        assert sharded.lookup(even, S1) == "even.com"
        assert sharded.lookup(odd, S1) == "odd.com"
        assert sharded.shards[0].client_count == 1
        assert sharded.shards[1].client_count == 1

    def test_same_behaviour_as_single(self):
        single = DnsResolver(clist_size=1000)
        sharded = ShardedResolver(shards=4, clist_size=4000)
        import random

        rng = random.Random(3)
        for _ in range(500):
            client = rng.randrange(1, 200)
            server = rng.randrange(1, 50)
            fqdn = f"site{rng.randrange(40)}.com"
            single.insert(client, fqdn, [server])
            sharded.insert(client, fqdn, [server])
        for client in range(1, 200):
            for server in range(1, 50):
                assert single.peek(client, server) == sharded.peek(
                    client, server
                )

    def test_aggregated_stats(self):
        sharded = ShardedResolver(shards=2, clist_size=100)
        sharded.insert(C1, "a.com", [S1])
        sharded.insert(C2, "b.com", [S2])
        sharded.lookup(C1, S1)
        sharded.lookup(C2, S1)
        stats = sharded.stats
        assert stats.responses == 2
        assert stats.lookups == 2
        assert stats.hits == 1
        assert sharded.client_count == 2
        assert sharded.live_entries == 2

    def test_shard_balance(self):
        sharded = ShardedResolver(shards=2, clist_size=100)
        for i in range(20):
            sharded.insert(0x0A000000 + i, f"h{i}.com", [S1])
        balance = sharded.shard_balance()
        assert sum(balance) == 20
        assert balance == [10, 10]  # even/odd split is perfectly balanced

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedResolver(shards=0)

    def test_works_in_pipeline(self):
        """The sharded resolver is a drop-in for the tagger."""
        from repro.sniffer.tagger import FlowTagger

        sharded = ShardedResolver(shards=2, clist_size=100)
        sharded.insert(C1, "www.example.com", [S1], timestamp=0.0)
        tagger = FlowTagger(sharded, warmup=0.0, trace_start=0.0)
        flow = FlowRecord(
            fid=FiveTuple(C1, S1, 40000, 80, TransportProto.TCP),
            start=1.0,
            protocol=Protocol.HTTP,
        )
        tagger.tag(flow)
        assert flow.fqdn == "www.example.com"


class TestDnsCryptLimitation:
    def test_encrypted_dns_blinds_the_sniffer(self):
        """Sec. 6.1: DNSCrypt would make the DNS response sniffer
        ineffective — with no visible responses, nothing gets labeled."""
        from repro.sniffer.pipeline import SnifferPipeline

        events = [
            DnsObservation(1.0, C1, "secret.example.com", [S1]),
            FlowRecord(
                fid=FiveTuple(C1, S1, 40000, 443, TransportProto.TCP),
                start=2.0,
                protocol=Protocol.TLS,
            ),
        ]
        # DNSCrypt: drop every observation before it reaches the sniffer.
        encrypted_events = [
            e for e in events if not isinstance(e, DnsObservation)
        ]
        pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        flows = pipeline.process_events(encrypted_events)
        assert flows[0].fqdn is None
        assert pipeline.hit_ratio_by_protocol()[Protocol.TLS] == 0.0
