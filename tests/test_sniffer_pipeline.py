"""Integration tests: the assembled sniffer pipeline on both paths."""

import pytest

from repro.dns.message import DnsMessage
from repro.dns.records import a_record
from repro.dns.wire import encode_message
from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.net.ip import ip_from_str
from repro.net.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
    build_tcp_packet,
    build_udp_packet,
    decode_frame,
)
from repro.sniffer.pipeline import SnifferPipeline
from repro.sniffer.policy import PolicyAction, PolicyEnforcer, PolicyRule

CLIENT = ip_from_str("10.1.0.5")
DNS_SERVER = ip_from_str("10.1.0.1")
WEB = ip_from_str("93.184.216.34")


def _packets_for_session(fqdn="www.example.com"):
    """A DNS response followed by a complete TCP session to the answer."""
    query = DnsMessage.query(9, fqdn)
    response = DnsMessage.response_to(query, [a_record(fqdn, WEB, ttl=60)])
    packets = [
        decode_frame(
            1.0,
            build_udp_packet(
                1.0, DNS_SERVER, CLIENT, 53, 40001, encode_message(response)
            ),
        )
    ]
    flow = [
        (1.2, CLIENT, WEB, 40002, 80, TCP_SYN, b""),
        (1.25, WEB, CLIENT, 80, 40002, TCP_SYN | TCP_ACK, b""),
        (1.3, CLIENT, WEB, 40002, 80, TCP_ACK, b"GET / HTTP/1.1\r\n"),
        (1.4, WEB, CLIENT, 80, 40002, TCP_ACK, b"HTTP/1.1 200 OK\r\n"),
        (1.5, CLIENT, WEB, 40002, 80, TCP_FIN | TCP_ACK, b""),
        (1.6, WEB, CLIENT, 80, 40002, TCP_FIN | TCP_ACK, b""),
    ]
    for ts, src, dst, sport, dport, flags, payload in flow:
        packets.append(
            decode_frame(
                ts,
                build_tcp_packet(
                    ts, src, dst, sport, dport, flags, payload=payload
                ),
            )
        )
    return packets


class TestPacketPath:
    def test_end_to_end_tagging(self):
        pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        flows = pipeline.process_packets(_packets_for_session())
        assert len(flows) == 1
        assert flows[0].fqdn == "www.example.com"
        assert flows[0].bytes_up > 0

    def test_flow_without_dns_untagged(self):
        pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        packets = [
            decode_frame(
                0.0, build_tcp_packet(0.0, CLIENT, WEB, 40009, 80, TCP_SYN)
            )
        ]
        flows = pipeline.process_packets(packets)
        assert len(flows) == 1
        assert flows[0].fqdn is None

    def test_policy_blocks_on_packet_path(self):
        policy = PolicyEnforcer(
            rules=[PolicyRule("*.example.com", PolicyAction.BLOCK)]
        )
        pipeline = SnifferPipeline(clist_size=64, warmup=0.0, policy=policy)
        flows = pipeline.process_packets(_packets_for_session())
        assert flows == []
        assert len(pipeline.blocked_flows) == 1
        assert policy.stats["blocked"] == 1


class TestEventPath:
    def test_events_tag_like_packets(self):
        pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        events = [
            DnsObservation(1.0, CLIENT, "www.example.com", [WEB]),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB, 40002, 80, TransportProto.TCP),
                start=1.2,
                protocol=Protocol.HTTP,
            ),
        ]
        flows = pipeline.process_events(events)
        assert flows[0].fqdn == "www.example.com"
        assert pipeline.hit_ratio_by_protocol()[Protocol.HTTP] == 1.0

    def test_rejects_unknown_event(self):
        pipeline = SnifferPipeline()
        with pytest.raises(TypeError):
            pipeline.process_events([object()])

    def test_hit_counts(self):
        pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        events = [
            DnsObservation(1.0, CLIENT, "a.com", [WEB]),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB, 1, 80, TransportProto.TCP),
                start=1.2,
                protocol=Protocol.HTTP,
            ),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB + 1, 2, 80, TransportProto.TCP),
                start=1.3,
                protocol=Protocol.HTTP,
            ),
        ]
        pipeline.process_events(events)
        hits, total = pipeline.hit_counts_by_protocol()[Protocol.HTTP]
        assert (hits, total) == (1, 2)

    def test_event_runs_match_event_stream(self):
        """`process_event_runs` over `iter_event_runs`-style batches
        must label exactly like the per-event path."""
        events = [
            DnsObservation(1.0, CLIENT, "a.example.com", [WEB]),
            DnsObservation(1.1, CLIENT, "b.example.com", [WEB + 1]),
            DnsObservation(1.2, CLIENT, "nx.example.com", []),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB, 1, 80, TransportProto.TCP),
                start=2.0,
                protocol=Protocol.HTTP,
            ),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB + 1, 2, 443, TransportProto.TCP),
                start=2.1,
                protocol=Protocol.TLS,
            ),
            DnsObservation(3.0, CLIENT, "c.example.com", [WEB + 2]),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB + 2, 3, 80, TransportProto.TCP),
                start=3.5,
                protocol=Protocol.HTTP,
            ),
        ]
        runs = [
            (True, events[0:3]),
            (False, events[3:5]),
            (True, events[5:6]),
            (False, events[6:7]),
        ]
        import copy

        by_event = SnifferPipeline(clist_size=64, warmup=0.0)
        by_event.process_events(copy.deepcopy(events))
        by_runs = SnifferPipeline(clist_size=64, warmup=0.0)
        by_runs.process_event_runs(runs)
        assert [f.fqdn for f in by_runs.tagged_flows] == [
            f.fqdn for f in by_event.tagged_flows
        ]
        assert by_runs.resolver.stats == by_event.resolver.stats
        assert (
            by_runs.dns_sniffer.stats["empty_answers"]
            == by_event.dns_sniffer.stats["empty_answers"]
        )

    def test_trace_iter_event_runs_grouping(self):
        class FakeTrace:
            def __init__(self, events):
                self.events = events

        from repro.simulation.trace import Trace

        events = [
            DnsObservation(1.0, CLIENT, "x.com", [WEB]),
            DnsObservation(1.1, CLIENT, "y.com", [WEB]),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB, 5, 80, TransportProto.TCP),
                start=2.0,
            ),
            DnsObservation(3.0, CLIENT, "z.com", [WEB]),
        ]
        runs = list(Trace.iter_event_runs(FakeTrace(events)))
        assert [(is_dns, len(run)) for is_dns, run in runs] == [
            (True, 2), (False, 1), (True, 1),
        ]
        assert [e for _is_dns, run in runs for e in run] == events

    def test_sharded_pipeline_event_path(self):
        pipeline = SnifferPipeline(clist_size=640, warmup=0.0, shards=4)
        events = [
            DnsObservation(1.0, CLIENT, "www.example.com", [WEB]),
            FlowRecord(
                fid=FiveTuple(CLIENT, WEB, 40002, 80, TransportProto.TCP),
                start=1.2,
                protocol=Protocol.HTTP,
            ),
        ]
        flows = pipeline.process_events(events)
        assert flows[0].fqdn == "www.example.com"
        assert pipeline.resolver.stats.responses == 1

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            SnifferPipeline(shards=0)

    def test_process_trace_duck_typing(self):
        class FakeTrace:
            def iter_events(self):
                yield DnsObservation(1.0, CLIENT, "x.com", [WEB])
                yield FlowRecord(
                    fid=FiveTuple(CLIENT, WEB, 5, 443, TransportProto.TCP),
                    start=2.0,
                    protocol=Protocol.TLS,
                )

        pipeline = SnifferPipeline(clist_size=8, warmup=0.0)
        flows = pipeline.process_trace(FakeTrace())
        assert flows[0].fqdn == "x.com"


class TestPacketEventEquivalence:
    def test_same_label_both_paths(self):
        """The fast event path must produce the same labels as the
        packet path for an identical session."""
        packet_pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        packet_flows = packet_pipeline.process_packets(_packets_for_session())

        event_pipeline = SnifferPipeline(clist_size=64, warmup=0.0)
        event_flows = event_pipeline.process_events(
            [
                DnsObservation(1.0, CLIENT, "www.example.com", [WEB]),
                FlowRecord(
                    fid=FiveTuple(CLIENT, WEB, 40002, 80, TransportProto.TCP),
                    start=1.2,
                ),
            ]
        )
        assert packet_flows[0].fqdn == event_flows[0].fqdn
        assert packet_flows[0].fid == event_flows[0].fid


class TestEmitTaggedBatchesDrains:
    """emit_tagged_batches drains in both modes: each call returns only
    the flows tagged since the previous call (regression: the
    single-process path used to re-emit the full list every call)."""

    def test_single_process_emit_is_incremental(self):
        from repro.analytics.database import FlowDatabase
        from repro.net.flow import DnsObservation

        def burst(base_ts):
            return [
                DnsObservation(timestamp=base_ts, client_ip=7,
                               fqdn="svc.example.com", answers=[42]),
                FlowRecord(
                    fid=FiveTuple(7, 42, 40000, 80, TransportProto.TCP),
                    start=base_ts + 1.0,
                ),
            ]

        pipeline = SnifferPipeline(clist_size=128)
        database = FlowDatabase()
        pipeline.process_events(burst(0.0))
        for payload in pipeline.emit_tagged_batches():
            database.ingest_batch(payload)
        pipeline.process_events(burst(1000.0))
        for payload in pipeline.emit_tagged_batches():
            database.ingest_batch(payload)
        assert pipeline.emit_tagged_batches() == []
        assert len(database) == len(pipeline.tagged_flows) == 2
        assert list(database) == pipeline.tagged_flows
