"""Fuzz-style robustness tests: hostile bytes must raise the documented
errors, never crash with anything else.

A passive sniffer parses attacker-controlled input by definition, so the
codecs' error behaviour is a security property, not a nicety.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import DnsMessage
from repro.dns.records import a_record
from repro.dns.wire import DnsWireError, decode_message, encode_message
from repro.net.packet import PacketDecodeError, decode_frame
from repro.net.pcap import PcapFormatError, PcapReader


class TestDnsWireFuzz:
    @settings(max_examples=300)
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            message = decode_message(data)
        except DnsWireError:
            return
        # If it parsed, it must be internally consistent.
        assert isinstance(message, DnsMessage)

    @settings(max_examples=100)
    @given(st.binary(min_size=1, max_size=30), st.integers(0, 50))
    def test_truncated_valid_messages(self, fqdn_bytes, cut):
        """Truncating a valid message raises DnsWireError, not random
        exceptions."""
        name = "host.example.com"
        query = DnsMessage.query(1, name)
        response = DnsMessage.response_to(
            query, [a_record(name, 0x01020304, ttl=60)]
        )
        wire = encode_message(response)
        truncated = wire[: max(0, len(wire) - 1 - cut % len(wire))]
        try:
            decode_message(truncated)
        except DnsWireError:
            pass

    @settings(max_examples=150)
    @given(st.binary(max_size=120), st.integers(0, 119))
    def test_bit_flipped_messages(self, garbage, position):
        query = DnsMessage.query(7, "www.example.com")
        response = DnsMessage.response_to(
            query, [a_record("www.example.com", 0x0A0B0C0D, ttl=60)]
        )
        wire = bytearray(encode_message(response))
        if position < len(wire):
            wire[position] ^= 0xFF
        try:
            decode_message(bytes(wire) + garbage[:4])
        except DnsWireError:
            pass


class TestPacketFuzz:
    @settings(max_examples=300)
    @given(st.binary(max_size=120))
    def test_arbitrary_frames_never_crash(self, data):
        try:
            decode_frame(0.0, data)
        except PacketDecodeError:
            pass

    @settings(max_examples=200)
    @given(st.binary(max_size=80))
    def test_raw_ip_mode(self, data):
        try:
            decode_frame(0.0, data, with_ethernet=False)
        except PacketDecodeError:
            pass


class TestPcapFuzz:
    @settings(max_examples=200)
    @given(st.binary(max_size=200))
    def test_arbitrary_files_never_crash(self, data):
        try:
            list(PcapReader(io.BytesIO(data)))
        except PcapFormatError:
            pass


class TestSnifferHostileInput:
    def test_pipeline_survives_garbage_udp53(self):
        """A flood of malformed 'DNS' packets must only bump counters."""
        from repro.net.packet import build_udp_packet
        from repro.sniffer.pipeline import SnifferPipeline

        pipeline = SnifferPipeline(clist_size=64)
        packets = [
            decode_frame(
                float(i),
                build_udp_packet(float(i), 1000 + i, 2000, 53, 3000, bytes([i % 256]) * (i % 40)),
            )
            for i in range(100)
        ]
        pipeline.process_packets(packets)
        assert pipeline.dns_sniffer.stats["decode_errors"] > 0
        assert pipeline.tagged_flows == []

    def test_resolver_handles_pathological_answer_lists(self):
        from repro.sniffer.resolver import DnsResolver

        resolver = DnsResolver(clist_size=4)
        # Huge duplicate-laden answer list.
        resolver.insert(1, "x.com", [5] * 1000 + list(range(100)))
        resolver.check_invariants()
        assert resolver.peek(1, 5) == "x.com"

    def test_domain_name_hostile_inputs(self):
        from repro.dns.name import DomainName, DomainNameError

        for bad in ("." * 300, "a" * 64 + ".com", "\x00.com", " ", "a..b..c"):
            with pytest.raises(DomainNameError):
                DomainName(bad)

    def test_tokenizer_hostile_inputs(self):
        from repro.analytics.tokens import tokenize_fqdn

        # Must never raise, whatever the label soup.
        for weird in ("", ".", "a..b", "x" * 300, "--..--", "123.456.789"):
            assert isinstance(tokenize_fqdn(weird), list)
