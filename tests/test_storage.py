"""Property/differential tests for the on-disk segmented flow store.

The durable store must be invisible to the query layer: a database
spilled to segments during ingest and reopened from the directory has
to answer **every** query-surface call and grouped aggregation
identically to the in-memory columnar store and the seed row store —
on randomized flow sets, for both ingestion paths, across spill
boundaries, after compaction, and with or without numpy.  Corruption
must be rejected atomically: a truncated or bit-flipped segment fails
the open with ``StorageError`` instead of answering wrong.
"""

import json
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analytics.database as database_module
from repro.analytics.database import FlowDatabase
from repro.analytics.database_reference import (
    FlowDatabase as ReferenceDatabase,
)
from repro.analytics.storage import (
    FlowStore,
    SegmentReader,
    SegmentWriter,
    StorageError,
    write_segment,
)
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.sniffer.eventcodec import encode_events

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u48 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFF)
finite = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-3600.0, max_value=86400.0,
)
# Small pools force collisions across segment boundaries: the same
# label (in both cases), server and port must re-intern consistently
# in later segments.  Empty-string labels exercise the raw=""/untagged
# distinction through the string tables.
labels = st.none() | st.sampled_from([
    "", "www.google.com", "WWW.Google.COM", "mail.google.com",
    "cdn1.fbcdn.net", "CDN1.fbcdn.net", "static.bbc.co.uk",
    "a.b.c.example.org", "tracker.appspot.com", "x",
]) | st.text(min_size=1, max_size=20)
addresses = st.integers(min_value=1, max_value=40) | st.sampled_from(
    [0x80000000, 0xDEADBEEF, 0xFFFFFFFF]
)
ports = st.sampled_from([80, 443, 8080, 51413])

flows = st.builds(
    FlowRecord,
    fid=st.builds(
        FiveTuple,
        client_ip=addresses,
        server_ip=addresses,
        src_port=u16,
        dst_port=ports,
        proto=st.sampled_from(TransportProto),
    ),
    start=finite,
    end=finite,
    protocol=st.sampled_from(Protocol),
    bytes_up=u48,
    bytes_down=u48,
    packets=u32,
    fqdn=labels,
    cert_name=st.none() | st.sampled_from(["cert.example.com", ""]),
    true_fqdn=st.none() | st.sampled_from(["true.example.com"]),
)

flow_lists = st.lists(flows, min_size=0, max_size=60)
spill_sizes = st.integers(min_value=1, max_value=25)


@contextmanager
def _without_numpy():
    saved = database_module._np
    database_module._np = None
    try:
        yield
    finally:
        database_module._np = saved


def _assert_store_matches(store, mem: FlowDatabase, ref: ReferenceDatabase):
    """The full differential: store vs in-memory columnar vs seed row
    store — query surface (vs both) and grouped aggregations including
    interned-id assignment and output ordering (vs the columnar store).
    """
    assert len(store) == len(ref)
    assert store.tagged_count == ref.tagged_count
    assert store.time_span() == ref.time_span()
    assert store.count_by_protocol() == ref.count_by_protocol()
    # Intern/first-appearance orders must survive the disk round trip.
    assert store.fqdns() == ref.fqdns()
    assert store.slds() == ref.slds()
    assert store.servers() == ref.servers()
    assert store.ports() == ref.ports()
    assert list(store) == list(ref)
    for fqdn in [*ref.fqdns(), "missing.example.net", ""]:
        assert store.query_by_fqdn(fqdn) == ref.query_by_fqdn(fqdn)
        assert store.query_by_fqdn(fqdn.upper()) == ref.query_by_fqdn(
            fqdn.upper()
        )
        assert store.servers_for_fqdn(fqdn) == ref.servers_for_fqdn(fqdn)
        assert store.server_bins_for_fqdn(fqdn, 600.0) == (
            mem.server_bins_for_fqdn(fqdn, 600.0)
        )
    for sld in [*ref.slds(), "missing.example.net"]:
        assert store.query_by_domain(sld) == ref.query_by_domain(sld)
        assert store.servers_for_domain(sld) == ref.servers_for_domain(sld)
        assert store.fqdns_for_domain(sld) == ref.fqdns_for_domain(sld)
        assert store.unique_servers_per_bin(sld, 600.0) == (
            mem.unique_servers_per_bin(sld, 600.0)
        )
    servers = ref.servers()
    for probe in [servers, servers[:3] * 2, [999999], []]:
        assert store.query_by_servers(probe) == ref.query_by_servers(probe)
        assert store.fqdns_for_servers(probe) == ref.fqdns_for_servers(
            probe
        )
    for port in [*ref.ports(), 1]:
        assert store.query_by_port(port) == ref.query_by_port(port)
    # Grouped aggregations: identical global ids AND ordering vs the
    # in-memory columnar store (sld_flow_stats/server_flow_counts allow
    # order-free equality — the in-memory store itself orders those
    # differently with and without numpy).
    assert store.fqdn_server_counts() == sorted(mem.fqdn_server_counts())
    assert store.fqdn_client_counts() == sorted(mem.fqdn_client_counts())
    assert store.fqdn_flow_byte_totals() == sorted(
        mem.fqdn_flow_byte_totals()
    )
    assert store.server_flow_counts() == mem.server_flow_counts()
    assert store.fqdn_first_seen() == mem.fqdn_first_seen()
    assert store.fqdn_bin_pairs(600.0) == mem.fqdn_bin_pairs(600.0)
    assert store.server_fqdn_bin_triples(600.0) == (
        mem.server_fqdn_bin_triples(600.0)
    )
    rows = store.rows_for_servers(servers)
    mem_rows = mem.rows_for_servers(servers)
    assert list(rows) == list(mem_rows)
    assert sorted(store.sld_flow_stats(rows)) == sorted(
        mem.sld_flow_stats(mem_rows)
    )
    assert store.fqdns_for_rows(rows) == mem.fqdns_for_rows(mem_rows)
    assert store.fqdn_server_counts(rows) == sorted(
        mem.fqdn_server_counts(mem_rows)
    )
    assert list(store.tagged_rows()) == list(mem.tagged_rows())


def _spilled_store(tmp_path, flow_list, spill_rows, via_batches=False):
    store = FlowDatabase(
        spill_dir=tmp_path / "store", spill_rows=spill_rows
    )
    assert isinstance(store, FlowStore)
    if via_batches:
        for pos in range(0, len(flow_list), 7):
            store.ingest_batch(encode_events(flow_list[pos:pos + 7]))
    else:
        store.add_all(flow_list)
    store.close()
    return store


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(flow_lists, spill_sizes)
    def test_write_reopen_query_identical(
        self, tmp_path_factory, flow_list, spill_rows
    ):
        tmp_path = tmp_path_factory.mktemp("store")
        _spilled_store(tmp_path, flow_list, spill_rows)
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        reopened = FlowStore(tmp_path / "store")
        _assert_store_matches(reopened, mem, ref)

    @settings(max_examples=25, deadline=None)
    @given(flow_lists, spill_sizes)
    def test_batch_ingest_reopen_identical(
        self, tmp_path_factory, flow_list, spill_rows
    ):
        tmp_path = tmp_path_factory.mktemp("store")
        _spilled_store(tmp_path, flow_list, spill_rows, via_batches=True)
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        reopened = FlowStore(tmp_path / "store")
        _assert_store_matches(reopened, mem, ref)

    @settings(max_examples=20, deadline=None)
    @given(flow_lists, spill_sizes)
    def test_live_store_answers_like_reopened(
        self, tmp_path_factory, flow_list, spill_rows
    ):
        """The spilling store mid-session (sealed segments + live tail)
        answers exactly like the in-memory store too."""
        tmp_path = tmp_path_factory.mktemp("store")
        store = FlowStore(tmp_path / "store", spill_rows=spill_rows)
        store.add_all(flow_list)  # no close: tail stays live
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        _assert_store_matches(store, mem, ref)

    @settings(max_examples=12, deadline=None)
    @given(flow_lists, spill_sizes)
    def test_round_trip_without_numpy(
        self, tmp_path_factory, flow_list, spill_rows
    ):
        tmp_path = tmp_path_factory.mktemp("store")
        with _without_numpy():
            _spilled_store(tmp_path, flow_list, spill_rows)
            mem = FlowDatabase.from_flows(flow_list)
            ref = ReferenceDatabase.from_flows(flow_list)
            reopened = FlowStore(tmp_path / "store")
            _assert_store_matches(reopened, mem, ref)

    @settings(max_examples=12, deadline=None)
    @given(flow_lists, spill_sizes)
    def test_numpy_written_python_read(
        self, tmp_path_factory, flow_list, spill_rows
    ):
        """Segments written on the numpy path must reopen identically
        on the pure-Python path (and the committed format is shared)."""
        tmp_path = tmp_path_factory.mktemp("store")
        _spilled_store(tmp_path, flow_list, spill_rows)
        ref = ReferenceDatabase.from_flows(flow_list)
        with _without_numpy():
            mem = FlowDatabase.from_flows(flow_list)
            reopened = FlowStore(tmp_path / "store")
            _assert_store_matches(reopened, mem, ref)


class TestCompaction:
    @settings(max_examples=25, deadline=None)
    @given(flow_lists, spill_sizes)
    def test_compaction_preserves_queries(
        self, tmp_path_factory, flow_list, spill_rows
    ):
        tmp_path = tmp_path_factory.mktemp("store")
        store = _spilled_store(tmp_path, flow_list, spill_rows)
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        store.compact()
        assert len(store.segments) <= 1
        _assert_store_matches(store, mem, ref)
        reopened = FlowStore(tmp_path / "store")
        _assert_store_matches(reopened, mem, ref)

    def test_small_rows_merges_only_adjacent_small_runs(self, tmp_path):
        flow_list = [_flow(i) for i in range(30)]
        store = FlowStore(tmp_path / "store", spill_rows=3)
        store.add_all(flow_list[:9])       # 3 segments of 3
        store.flush()
        store.spill_rows = 100
        store.add_all(flow_list[9:29])     # one segment of 20
        store.flush()
        store.spill_rows = 3
        store.add_all(flow_list[29:])      # trailing run of 1 (not merged)
        store.flush()
        sizes = [seg.n_rows for seg in store.segments]
        assert sizes == [3, 3, 3, 20, 1]
        removed = store.compact(small_rows=10)
        assert removed == 2
        assert [seg.n_rows for seg in store.segments] == [9, 20, 1]
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        _assert_store_matches(store, mem, ref)
        _assert_store_matches(FlowStore(tmp_path / "store"), mem, ref)

    def test_compaction_without_numpy(self, tmp_path):
        flow_list = [_flow(i) for i in range(25)]
        with _without_numpy():
            store = _spilled_store(tmp_path, flow_list, 4)
            store.compact()
            mem = FlowDatabase.from_flows(flow_list)
            ref = ReferenceDatabase.from_flows(flow_list)
            _assert_store_matches(store, mem, ref)


def _flow(i: int, fqdn="www.Example.com") -> FlowRecord:
    return FlowRecord(
        fid=FiveTuple(10 + i % 5, 20 + i % 3, 1024 + i, 443,
                      TransportProto.TCP),
        start=float(i),
        end=float(i) + 1.5,
        protocol=Protocol.TLS,
        bytes_up=100 + i,
        bytes_down=2000 + i,
        packets=12,
        fqdn=fqdn if i % 4 else None,
        cert_name="cert.example.com" if i % 2 else None,
    )


class TestCorruption:
    def _store_with_segment(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=8)
        store.add_all(_flow(i) for i in range(20))
        store.close()
        segments = sorted((tmp_path / "store").glob("seg-*.fseg"))
        assert len(segments) >= 2
        return tmp_path / "store", segments

    # strict=True pins the PR4/PR5 hard-fail contract; the default
    # (quarantine and keep serving) is covered by the crash/degradation
    # suite in tests/test_storage_crash.py.

    def test_truncated_segment_rejected(self, tmp_path):
        directory, segments = self._store_with_segment(tmp_path)
        raw = segments[0].read_bytes()
        segments[0].write_bytes(raw[:len(raw) - 7])
        with pytest.raises(StorageError):
            FlowStore(directory, strict=True)

    def test_bit_flip_rejected(self, tmp_path):
        directory, segments = self._store_with_segment(tmp_path)
        raw = bytearray(segments[1].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        segments[1].write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            FlowStore(directory, strict=True)

    def test_bad_magic_rejected(self, tmp_path):
        directory, segments = self._store_with_segment(tmp_path)
        raw = bytearray(segments[0].read_bytes())
        raw[:4] = b"NOPE"
        segments[0].write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            FlowStore(directory, strict=True)

    def test_malformed_manifest_rejected(self, tmp_path):
        directory, _segments = self._store_with_segment(tmp_path)
        (directory / "MANIFEST.json").write_text("{not json")
        with pytest.raises(StorageError):
            FlowStore(directory)
        (directory / "MANIFEST.json").write_text(
            json.dumps({"format": 99, "segments": []})
        )
        with pytest.raises(StorageError):
            FlowStore(directory)
        (directory / "MANIFEST.json").write_text(
            json.dumps({"format": 1, "segments": ["../escape.fseg"]})
        )
        with pytest.raises(StorageError):
            FlowStore(directory)
        # v2 entry forms: escape attempts and junk entries both fail.
        (directory / "MANIFEST.json").write_text(
            json.dumps({
                "format": 2,
                "segments": [{"name": "../escape.fseg", "meta": None}],
            })
        )
        with pytest.raises(StorageError):
            FlowStore(directory)
        (directory / "MANIFEST.json").write_text(
            json.dumps({"format": 2, "segments": [42]})
        )
        with pytest.raises(StorageError):
            FlowStore(directory)

    def test_orphan_segment_ignored(self, tmp_path):
        """A segment file written but never committed to the manifest
        (torn spill) is invisible — the store opens with the committed
        rows only and never reuses the orphan's name."""
        directory, segments = self._store_with_segment(tmp_path)
        committed = len(FlowStore(directory))
        orphan = directory / "seg-00000077.fseg"
        orphan.write_bytes(segments[0].read_bytes())
        store = FlowStore(directory)
        assert len(store) == committed
        store.add_all(_flow(100 + i) for i in range(3))
        name = store.flush()
        assert name == "seg-00000078.fseg"  # past the orphan

    def test_store_survives_corrupt_open_attempt(self, tmp_path):
        """A failed strict open leaves nothing behind that blocks a
        repair: restoring the file restores the store."""
        directory, segments = self._store_with_segment(tmp_path)
        good = segments[0].read_bytes()
        segments[0].write_bytes(good[:10])
        with pytest.raises(StorageError):
            FlowStore(directory, strict=True)
        segments[0].write_bytes(good)
        assert len(FlowStore(directory, strict=True)) == 20


class TestSegmentFormat:
    def test_segment_writer_names_are_sequential(self, tmp_path):
        writer = SegmentWriter(tmp_path)
        db = FlowDatabase.from_flows([_flow(i) for i in range(3)])
        assert writer.write(db) == "seg-00000001.fseg"
        assert writer.write(db) == "seg-00000002.fseg"

    def test_empty_segment_round_trips(self, tmp_path):
        path = tmp_path / "seg-00000001.fseg"
        write_segment(path, FlowDatabase())
        reader = SegmentReader.open(path)
        assert reader.n_rows == 0
        assert len(reader.database()) == 0

    def test_reader_reports_table_sizes(self, tmp_path):
        db = FlowDatabase.from_flows(
            [_flow(i) for i in range(10)]
            + [_flow(21, fqdn="other.example.net")]
        )
        path = tmp_path / "seg-00000001.fseg"
        write_segment(path, db)
        reader = SegmentReader.open(path)
        assert reader.n_rows == 11
        assert set(reader.labels) == {"www.Example.com", "other.example.net"}
        assert reader.certs == ("cert.example.com",)
        loaded = reader.database()
        assert list(loaded) == list(db)
        assert loaded.fqdns() == db.fqdns()
        reader.release()
        assert not reader.resident
        assert list(reader.database()) == list(db)

    def test_spill_bytes_budget(self, tmp_path):
        store = FlowStore(
            tmp_path / "store", spill_rows=10_000, spill_bytes=256
        )
        store.add_all(_flow(i) for i in range(40))
        assert len(store.segments) >= 2  # byte budget forced spills

    def test_cheap_stats_do_not_materialize_segments(self, tmp_path):
        """time_span / count_by_protocol / tagged_count come from the
        per-segment summaries (four block reads), never from a full
        segment rebuild."""
        flow_list = [_flow(i) for i in range(30)]
        writer = FlowStore(tmp_path / "store", spill_rows=8)
        writer.add_all(flow_list)
        writer.close()
        store = FlowStore(tmp_path / "store")
        ref = ReferenceDatabase.from_flows(flow_list)
        assert store.time_span() == ref.time_span()
        assert store.tagged_count == ref.tagged_count
        assert store.count_by_protocol() == ref.count_by_protocol()
        assert all(not seg.resident for seg in store.segments)

    def test_streaming_queries_release_segments(self, tmp_path):
        """cache_segments=False: a whole-store pass holds one segment
        at a time and leaves nothing resident, with identical answers."""
        flow_list = [_flow(i) for i in range(30)]
        cached = FlowStore(tmp_path / "store", spill_rows=8)
        cached.add_all(flow_list)
        cached.close()
        streaming = FlowStore(tmp_path / "store", cache_segments=False)
        mem = FlowDatabase.from_flows(flow_list)
        assert streaming.fqdn_server_counts() == mem.fqdn_server_counts()
        assert streaming.tagged_count == mem.tagged_count
        assert list(streaming) == list(mem)
        assert all(not seg.resident for seg in streaming.segments)
        rows = streaming.rows_for_servers(mem.servers())
        assert list(rows) == list(mem.rows_for_servers(mem.servers()))
        assert all(not seg.resident for seg in streaming.segments)

    def test_spill_releases_sealed_tail(self, tmp_path):
        """Spilling is what bounds resident memory: a sealed segment
        must not stay materialized, and queries reload it on demand."""
        store = FlowStore(tmp_path / "store", spill_rows=8)
        flow_list = [_flow(i) for i in range(20)]
        store.add_all(flow_list)
        assert all(not seg.resident for seg in store.segments)
        assert list(store) == list(
            FlowDatabase.from_flows(flow_list)
        )  # reloads lazily
        assert any(seg.resident for seg in store.segments)
        store.release_segments()
        assert all(not seg.resident for seg in store.segments)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FlowStore(tmp_path / "s", spill_rows=0)
        with pytest.raises(ValueError):
            FlowStore(tmp_path / "s", spill_bytes=-1)

    def test_stats_shape(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=8)
        store.add_all(_flow(i) for i in range(20))
        stats = store.stats()
        assert stats["rows"] == 20
        assert stats["sealed_rows"] + stats["tail_rows"] == 20
        assert stats["bytes_on_disk"] == sum(
            segment["bytes"] for segment in stats["segments"]
        )
