"""Tests for repro.net.ip: parsing, formatting, networks, pools."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ip import (
    IPv4Network,
    IPv4Pool,
    MAX_IPV4,
    ip_from_str,
    ip_to_str,
    is_private,
)


class TestConversion:
    def test_parse_simple(self):
        assert ip_from_str("1.2.3.4") == 0x01020304

    def test_parse_extremes(self):
        assert ip_from_str("0.0.0.0") == 0
        assert ip_from_str("255.255.255.255") == MAX_IPV4

    def test_format_simple(self):
        assert ip_to_str(0x01020304) == "1.2.3.4"

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.04", "", "1..2.3"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_from_str(bad)

    @pytest.mark.parametrize("bad", [-1, MAX_IPV4 + 1])
    def test_format_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            ip_to_str(bad)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip(self, value):
        assert ip_from_str(ip_to_str(value)) == value


class TestPrivate:
    def test_rfc1918_ranges(self):
        assert is_private(ip_from_str("10.1.2.3"))
        assert is_private(ip_from_str("172.16.0.1"))
        assert is_private(ip_from_str("192.168.255.1"))

    def test_public(self):
        assert not is_private(ip_from_str("8.8.8.8"))
        assert not is_private(ip_from_str("172.32.0.1"))


class TestNetwork:
    def test_parse_and_str(self):
        net = IPv4Network.parse("192.0.2.0/24")
        assert str(net) == "192.0.2.0/24"
        assert net.size == 256

    def test_membership(self):
        net = IPv4Network.parse("192.0.2.0/24")
        assert ip_from_str("192.0.2.77") in net
        assert ip_from_str("192.0.3.77") not in net

    def test_address_indexing(self):
        net = IPv4Network.parse("10.0.0.0/30")
        assert [ip_to_str(net.address(i)) for i in range(4)] == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]
        with pytest.raises(IndexError):
            net.address(4)

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv4Network.parse("192.0.2.1/24")

    def test_rejects_missing_prefix(self):
        with pytest.raises(ValueError):
            IPv4Network.parse("192.0.2.0")

    def test_subnets(self):
        net = IPv4Network.parse("10.0.0.0/24")
        subs = net.subnets(26)
        assert len(subs) == 4
        assert subs[1].base == ip_from_str("10.0.0.64")
        with pytest.raises(ValueError):
            net.subnets(23)

    def test_last_address(self):
        net = IPv4Network.parse("10.0.0.0/24")
        assert ip_to_str(net.last) == "10.0.0.255"

    @given(st.integers(min_value=0, max_value=32))
    def test_mask_has_prefix_leading_ones(self, prefix):
        net = IPv4Network(0, prefix)
        assert bin(net.mask).count("1") == prefix


class TestPool:
    def test_allocation_order(self):
        pool = IPv4Pool.from_cidrs("10.0.0.0/30", "10.1.0.0/31")
        addrs = [ip_to_str(pool.allocate()) for _ in range(6)]
        assert addrs == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
            "10.1.0.0",
            "10.1.0.1",
        ]

    def test_exhaustion(self):
        pool = IPv4Pool.from_cidrs("10.0.0.0/31")
        pool.allocate_many(2)
        with pytest.raises(RuntimeError):
            pool.allocate()

    def test_capacity_and_contains(self):
        pool = IPv4Pool.from_cidrs("10.0.0.0/24")
        assert pool.capacity == 256
        assert ip_from_str("10.0.0.200") in pool
        assert ip_from_str("10.0.1.0") not in pool

    def test_allocated_counter(self):
        pool = IPv4Pool.from_cidrs("10.0.0.0/24")
        pool.allocate_many(5)
        assert pool.allocated == 5
