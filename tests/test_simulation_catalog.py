"""Sanity tests over the catalog data and entity model.

The catalog is the reproduction's "ground truth internet"; these tests
pin the structural properties the experiments depend on, so a careless
catalog edit fails fast instead of silently skewing a figure.
"""

import pytest

from repro.net.flow import Protocol
from repro.net.ip import IPv4Network
from repro.simulation.catalog import (
    APPSPOT_TRACKERS,
    ASSET_DOMAINS,
    build_catalog,
    build_cdns,
    build_organizations,
)
from repro.simulation.entities import (
    CertPolicy,
    Deployment,
    Organization,
    Service,
)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


class TestCdnCatalog:
    def test_blocks_do_not_overlap(self, catalog):
        cdns, orgs = catalog
        blocks = []
        for cdn in cdns:
            for cidrs in cdn.cidrs_by_geo.values():
                blocks.extend(IPv4Network.parse(c) for c in cidrs)
        for org in orgs:
            for cidrs in org.self_cidrs_by_geo.values():
                blocks.extend(IPv4Network.parse(c) for c in cidrs)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert a.last < b.base or b.last < a.base, (
                    f"address blocks overlap: {a} vs {b}"
                )

    def test_every_cdn_covers_both_geographies(self, catalog):
        cdns, _ = catalog
        for cdn in cdns:
            assert set(cdn.geographies()) == {"EU", "US"}, cdn.name

    def test_paper_cdns_present(self, catalog):
        cdns, _ = catalog
        names = {cdn.name for cdn in cdns}
        # Fig. 5's x-axis plus Fig. 7/9 hosts.
        for required in ("akamai", "amazon", "google", "level 3",
                        "leaseweb", "cotendo", "edgecast", "microsoft",
                        "cdnetworks", "dedibox", "meta", "ntt"):
            assert required in names

    def test_ptr_coverage_in_range(self, catalog):
        cdns, _ = catalog
        for cdn in cdns:
            assert 0.0 <= cdn.ptr_coverage <= 1.0


class TestOrganizationCatalog:
    def test_every_deployment_names_known_host(self, catalog):
        cdns, orgs = catalog
        cdn_names = {cdn.name for cdn in cdns}
        for org in orgs:
            for service in org.services:
                for deployment in service.deployments:
                    assert (
                        deployment.cdn == "SELF"
                        or deployment.cdn in cdn_names
                    ), f"{org.domain}: unknown host {deployment.cdn}"

    def test_self_deployments_have_address_space(self, catalog):
        _, orgs = catalog
        for org in orgs:
            uses_self = any(
                d.cdn == "SELF"
                for s in org.services
                for d in s.deployments
            )
            if uses_self:
                assert org.self_cidrs_by_geo, (
                    f"{org.domain} SELF-hosts but owns no addresses"
                )

    def test_popularities_non_negative(self, catalog):
        _, orgs = catalog
        for org in orgs:
            for service in org.services:
                assert service.popularity >= 0
                for value in service.popularity_by_geo.values():
                    assert value >= 0

    def test_cdn_cert_policy_has_name(self, catalog):
        _, orgs = catalog
        for org in orgs:
            if org.cert_policy is CertPolicy.CDN_NAME:
                assert org.cert_cdn_name, org.domain

    def test_asset_domains_exist(self, catalog):
        _, orgs = catalog
        domains = {org.domain for org in orgs}
        assert ASSET_DOMAINS <= domains

    def test_trackers_named_trackerish(self):
        # Fig. 10/11 analyses match tracker names by token; the catalog
        # pool must stay detectable by the default classifier.
        from repro.analytics.trackers import TrackerActivityAnalysis

        classify = TrackerActivityAnalysis._default_classifier
        detectable = sum(1 for name in APPSPOT_TRACKERS if classify(name))
        assert detectable / len(APPSPOT_TRACKERS) > 0.6

    def test_total_popularity_helper(self):
        org = Organization(
            domain="x.com",
            services=[
                Service("a", 80, Protocol.HTTP,
                        [Deployment("SELF", 1)], popularity=2.0,
                        popularity_by_geo={"US": 5.0}),
                Service("b", 80, Protocol.HTTP,
                        [Deployment("SELF", 1)], popularity=1.0),
            ],
        )
        assert org.total_popularity("EU") == 3.0
        assert org.total_popularity("US") == 6.0


class TestDeploymentModel:
    def test_active_in(self):
        everywhere = Deployment("akamai", 2)
        assert everywhere.active_in("EU") and everywhere.active_in("US")
        eu_only = Deployment("akamai", 2, geographies=("EU",))
        assert eu_only.active_in("EU")
        assert not eu_only.active_in("US")

    def test_paper_port_coverage(self, catalog):
        """Every port named in Tab. 6/7 exists somewhere in the catalog."""
        _, orgs = catalog
        ports = {
            service.port for org in orgs for service in org.services
        }
        for port in (25, 110, 143, 554, 587, 995, 1863, 1080, 1337, 2710,
                     5050, 5190, 5222, 5223, 5228, 6969, 12043, 12046,
                     18182):
            assert port in ports, f"port {port} lost from the catalog"

    def test_organizations_unique(self):
        orgs = build_organizations()
        domains = [org.domain for org in orgs]
        assert len(domains) == len(set(domains))

    def test_cdns_unique(self):
        names = [cdn.name for cdn in build_cdns()]
        assert len(names) == len(set(names))
