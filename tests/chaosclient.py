"""Misbehaving HTTP clients for the service-level chaos suite.

The serve daemon's overload protections (admission gate, socket
timeouts, ``Content-Length``-first body handling, request deadlines)
exist for clients that the stdlib test clients cannot imitate:
``urllib`` always sends complete well-formed requests.  This module
speaks raw sockets so a test can be exactly as rude as the internet:

* :func:`slow_loris` — opens a connection and trickles header bytes
  forever (never finishing the request), the classic thread-starvation
  attack on one-thread-per-connection servers;
* :func:`mid_body_disconnect` — sends a POST promising
  ``Content-Length`` bytes, transmits a prefix, and vanishes;
* :func:`oversized_post` — announces a body far over the ingest cap
  and starts streaming it, recording how much the server accepted
  before refusing (a hardened server answers 413 from the header
  alone);
* :func:`raw_get` / :func:`raw_post` — minimal well-formed requests
  over a raw socket, returning status, headers, and body, so tests
  can read ``Retry-After`` and status codes without ``urllib``'s
  error-mapping in the way.

Every helper takes ``(host, port)`` and bounds its own socket with a
timeout — the chaos suite must never hang on the server it is trying
to wedge.
"""

from __future__ import annotations

import json
import socket
import time


def open_conn(host: str, port: int, timeout: float = 10.0
              ) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return sock


def _read_response(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Parse one HTTP/1.x response off a raw socket."""
    blob = b""
    while b"\r\n\r\n" not in blob:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("connection closed before headers")
        blob += chunk
    head, body = blob.split(b"\r\n\r\n", 1)
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        body += chunk
    return status, headers, body


def raw_get(host: str, port: int, path: str,
            headers: dict | None = None, timeout: float = 10.0
            ) -> tuple[int, dict, bytes]:
    """One well-formed GET over a fresh socket (no urllib remapping)."""
    extra = "".join(
        f"{name}: {value}\r\n"
        for name, value in (headers or {}).items()
    )
    with open_conn(host, port, timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n{extra}"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        return _read_response(sock)


def raw_post(host: str, port: int, path: str, body: bytes,
             headers: dict | None = None, timeout: float = 10.0
             ) -> tuple[int, dict, bytes]:
    extra = "".join(
        f"{name}: {value}\r\n"
        for name, value in (headers or {}).items()
    )
    with open_conn(host, port, timeout) as sock:
        sock.sendall(
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(body)}\r\n{extra}"
            f"Connection: close\r\n\r\n".encode("latin-1") + body
        )
        return _read_response(sock)


def get_json(host: str, port: int, path: str,
             headers: dict | None = None, timeout: float = 10.0
             ) -> tuple[int, dict, dict]:
    """GET returning ``(status, headers, parsed-JSON body)``."""
    status, rsp_headers, body = raw_get(
        host, port, path, headers, timeout
    )
    return status, rsp_headers, json.loads(body)


def slow_loris(host: str, port: int, timeout: float = 10.0
               ) -> socket.socket:
    """Open a connection and send only a partial request line.

    Returns the live socket (caller closes).  The request is never
    completed — a hardened server must reclaim the handler thread via
    its socket timeout rather than wait forever.
    """
    sock = open_conn(host, port, timeout)
    sock.sendall(b"GET /query/len HT")  # ...and never finishes
    return sock


def wait_closed(sock: socket.socket, deadline_s: float) -> bool:
    """True once the server closes its end (EOF) within the budget."""
    expires = time.monotonic() + deadline_s
    sock.settimeout(0.25)
    while time.monotonic() < expires:
        try:
            if sock.recv(4096) == b"":
                return True
        except socket.timeout:
            continue
        except OSError:
            return True
    return False


def mid_body_disconnect(host: str, port: int, path: str = "/ingest",
                        content_length: int = 100_000,
                        send_bytes: int = 128,
                        timeout: float = 10.0) -> None:
    """POST a body prefix, then vanish (RST/FIN mid-upload)."""
    with open_conn(host, port, timeout) as sock:
        sock.sendall(
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {content_length}\r\n\r\n"
            .encode("latin-1")
        )
        sock.sendall(b"x" * send_bytes)
        # Context exit closes the socket with the body unfinished.


def oversized_post(host: str, port: int, path: str = "/ingest",
                   content_length: int = 1 << 30,
                   chunk: int = 4096, max_send: int = 1 << 20,
                   timeout: float = 10.0) -> tuple[int, int]:
    """Announce a huge body and stream it until the server answers.

    Returns ``(status, bytes_sent)``.  A ``Content-Length``-first
    server responds (413) after zero body bytes; one that reads before
    checking forces the client (and itself) through the whole upload.
    """
    with open_conn(host, port, timeout) as sock:
        sock.sendall(
            f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {content_length}\r\n\r\n"
            .encode("latin-1")
        )
        sent = 0
        payload = b"x" * chunk
        sock.settimeout(0.05)
        while sent < max_send:
            # An early response (or a closed connection) ends the
            # upload — that is the behavior under test.
            try:
                if sock.recv(1, socket.MSG_PEEK):
                    break
            except socket.timeout:
                pass
            except OSError:
                break
            try:
                sock.sendall(payload)
            except OSError:
                break
            sent += chunk
        sock.settimeout(timeout)
        status, _headers, _body = _read_response(sock)
        return status, sent
