"""The CI benchmark-regression gate: compare logic and exit codes."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.run_bench import (  # noqa: E402
    compare_benches,
    latest_bench_path,
    main,
    run_compare_gate,
)


def payload(**speedups):
    return {
        "bench": "BENCH_TEST",
        "benches": {
            name: ({"speedup": value} if value is not None else {})
            for name, value in speedups.items()
        },
    }


class TestCompareBenches:
    def test_all_within_tolerance(self):
        regressions, compared, skipped = compare_benches(
            payload(a=3.4, b=1.2),
            payload(a=3.3, b=1.3),
            tolerance=0.85,
        )
        assert regressions == []
        assert {entry["bench"] for entry in compared} == {"a", "b"}
        assert skipped == []

    def test_detects_regression(self):
        regressions, _compared, _skipped = compare_benches(
            payload(a=2.0, b=1.0),
            payload(a=3.4, b=1.0),
            tolerance=0.85,
        )
        assert [entry["bench"] for entry in regressions] == ["a"]
        assert regressions[0]["floor"] == pytest.approx(0.85 * 3.4)

    def test_boundary_is_strict(self):
        regressions, _, _ = compare_benches(
            payload(a=0.85), payload(a=1.0), tolerance=0.85
        )
        assert regressions == []  # exactly at the floor passes

    def test_unshared_and_speedupless_benches_skipped(self):
        regressions, compared, skipped = compare_benches(
            payload(a=1.0, b=None, only_current=9.0),
            payload(a=1.0, b=2.0, only_previous=9.0),
            tolerance=0.85,
        )
        assert regressions == []
        assert [entry["bench"] for entry in compared] == ["a"]
        # Coverage gaps are named in both directions, not silently
        # dropped: benches the baseline lost AND benches it has never
        # seen (a new bench cannot silently "pass" the gate).
        assert skipped == [
            "b (no seed-relative speedup)",
            "only_current (new bench, no baseline)",
            "only_previous (not in current run)",
        ]

    def test_gate_exempt_bench_never_regresses(self):
        current = payload(a=0.1)
        current["benches"]["a"]["gate_exempt"] = True
        regressions, compared, skipped = compare_benches(
            current, payload(a=10.0), tolerance=0.85
        )
        assert regressions == []
        assert compared == []
        assert skipped and "gate-exempt" in skipped[0]

    def test_latest_bench_path(self, tmp_path):
        assert latest_bench_path(tmp_path) is None
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_2.json").write_text("{}")
        assert latest_bench_path(tmp_path) == tmp_path / "BENCH_2.json"
        # In-repo, the newest committed file resolves (BENCH_2 as of PR 2).
        resolved = latest_bench_path()
        assert resolved is not None and resolved.exists()

    def test_latest_bench_path_with_numbering_gap(self, tmp_path):
        # Only BENCH_5 exists: the old count-up-from-1 scan reported
        # "no baseline" here; the glob must resolve it.
        (tmp_path / "BENCH_5.json").write_text("{}")
        (tmp_path / "BENCH_weird.json").write_text("{}")  # ignored
        assert latest_bench_path(tmp_path) == tmp_path / "BENCH_5.json"

    def test_gate_names_new_benches(self, tmp_path, capsys):
        previous = tmp_path / "BENCH_PREV.json"
        previous.write_text(json.dumps(payload(a=1.0)))
        code = run_compare_gate(
            payload(a=1.0, brand_new=3.0), previous, 0.85
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "brand_new (new bench, no baseline)" in out


class TestGateExitCodes:
    def test_gate_fails_on_regression(self, tmp_path, capsys):
        previous = tmp_path / "BENCH_PREV.json"
        previous.write_text(json.dumps(payload(a=10.0)))
        code = run_compare_gate(payload(a=1.0), previous, 0.85)
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_gate_passes_within_tolerance(self, tmp_path, capsys):
        previous = tmp_path / "BENCH_PREV.json"
        previous.write_text(json.dumps(payload(a=1.0)))
        code = run_compare_gate(payload(a=0.99), previous, 0.85)
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_gate_fails_on_missing_previous(self, tmp_path):
        code = run_compare_gate(
            payload(a=1.0), tmp_path / "missing.json", 0.85
        )
        assert code == 1

    def test_main_exits_nonzero_on_regression(self, tmp_path):
        """End to end: a real (tiny) bench run against an inflated
        previous result must fail the process — what CI relies on."""
        previous = tmp_path / "BENCH_PREV.json"
        previous.write_text(
            json.dumps(payload(resolver_lookup=10_000.0))
        )
        code = main([
            "--quick", "--only", "resolver_lookup",
            "--out", str(tmp_path / "bench.json"),
            "--compare", str(previous),
        ])
        assert code == 1

    def test_main_passes_against_modest_previous(self, tmp_path):
        previous = tmp_path / "BENCH_PREV.json"
        previous.write_text(
            json.dumps(payload(resolver_lookup=0.0001))
        )
        code = main([
            "--quick", "--only", "resolver_lookup",
            "--out", str(tmp_path / "bench.json"),
            "--compare", str(previous),
        ])
        assert code == 0
