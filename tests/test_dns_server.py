"""Tests for authoritative zones, reverse zones and the recursive resolver."""

import pytest

from repro.dns.message import DnsMessage, ResponseCode
from repro.dns.name import reverse_pointer_name
from repro.dns.records import RRType, a_record, cname_record
from repro.dns.server import RecursiveResolver, ReverseZone, Zone
from repro.net.ip import ip_from_str


def _make_resolver():
    resolver = RecursiveResolver()
    google = Zone(origin="google.com")
    google.add_a("mail.google.com", [ip_from_str("172.217.0.1")], ttl=300)
    google.add_a(
        "www.google.com",
        [ip_from_str("172.217.0.2"), ip_from_str("172.217.0.3")],
    )
    resolver.add_zone(google)
    zynga = Zone(origin="zynga.com")
    zynga.add(cname_record("static.zynga.com", "zynga.akamai-cdn.net"))
    resolver.add_zone(zynga)
    akamai = Zone(origin="akamai-cdn.net")
    akamai.add_a("zynga.akamai-cdn.net", [ip_from_str("2.16.0.1")], ttl=20)
    resolver.add_zone(akamai)
    return resolver


class TestZone:
    def test_add_and_lookup(self):
        zone = Zone(origin="example.com")
        zone.add_a("www.example.com", [1, 2])
        records = zone.lookup("www.example.com", RRType.A)
        assert [rr.address for rr in records] == [1, 2]

    def test_rejects_foreign_name(self):
        zone = Zone(origin="example.com")
        with pytest.raises(ValueError):
            zone.add(a_record("www.other.com", 1))

    def test_contains_name(self):
        zone = Zone(origin="example.com")
        zone.add_a("www.example.com", [1])
        assert zone.contains_name("WWW.example.com")
        assert not zone.contains_name("mail.example.com")

    def test_dynamic_hook(self):
        def hook(fqdn, now):
            if fqdn == "cdn.example.com":
                return [100 + int(now)]
            return None

        zone = Zone(origin="example.com", answer_hook=hook, default_ttl=30)
        zone.add_a("www.example.com", [1])
        dynamic = zone.lookup("cdn.example.com", RRType.A, now=5.0)
        assert [rr.address for rr in dynamic] == [105]
        assert dynamic[0].ttl == 30
        static = zone.lookup("www.example.com", RRType.A, now=5.0)
        assert [rr.address for rr in static] == [1]


class TestReverseZone:
    def test_set_and_lookup(self):
        reverse = ReverseZone()
        addr = ip_from_str("2.16.0.1")
        reverse.set_pointer(addr, "a2-16-0-1.deploy.akamaitechnologies.com")
        assert reverse.lookup(addr) == (
            "a2-16-0-1.deploy.akamaitechnologies.com"
        )
        records = reverse.lookup_record(addr)
        assert records[0].name == reverse_pointer_name(addr)

    def test_missing_pointer(self):
        reverse = ReverseZone()
        assert reverse.lookup(123) is None
        assert reverse.lookup_record(123) == []

    def test_remove_pointer(self):
        reverse = ReverseZone()
        reverse.set_pointer(5, "x.example.com")
        reverse.remove_pointer(5)
        assert reverse.lookup(5) is None
        assert len(reverse) == 0


class TestRecursiveResolver:
    def test_direct_a(self):
        resolver = _make_resolver()
        answers = resolver.resolve_a("mail.google.com")
        assert [rr.address for rr in answers] == [ip_from_str("172.217.0.1")]

    def test_cname_follow_across_zones(self):
        resolver = _make_resolver()
        answers = resolver.resolve_a("static.zynga.com")
        assert answers[0].rtype is RRType.CNAME
        assert answers[0].target == "zynga.akamai-cdn.net"
        assert answers[-1].rtype is RRType.A
        assert answers[-1].address == ip_from_str("2.16.0.1")

    def test_unknown_name(self):
        resolver = _make_resolver()
        assert resolver.resolve_a("nope.invalid") == []

    def test_duplicate_zone_rejected(self):
        resolver = _make_resolver()
        with pytest.raises(ValueError):
            resolver.add_zone(Zone(origin="google.com"))

    def test_handle_query_a(self):
        resolver = _make_resolver()
        query = DnsMessage.query(77, "www.google.com")
        response = resolver.handle_query(query)
        assert response.header.ident == 77
        assert response.header.is_response
        assert len(response.a_addresses()) == 2

    def test_handle_query_nxdomain(self):
        resolver = _make_resolver()
        response = resolver.handle_query(DnsMessage.query(1, "no.invalid"))
        assert response.header.rcode is ResponseCode.NXDOMAIN
        assert resolver.stats["nxdomain"] == 1

    def test_handle_ptr_query(self):
        resolver = _make_resolver()
        addr = ip_from_str("2.16.0.1")
        resolver.reverse.set_pointer(addr, "edge1.akamai.net")
        query = DnsMessage.query(
            3, reverse_pointer_name(addr), qtype=RRType.PTR
        )
        response = resolver.handle_query(query)
        assert response.answers[0].target == "edge1.akamai.net"

    def test_handle_ptr_query_bad_name(self):
        resolver = _make_resolver()
        query = DnsMessage.query(3, "weird.in-addr.arpa", qtype=RRType.PTR)
        response = resolver.handle_query(query)
        assert response.header.rcode is ResponseCode.NXDOMAIN

    def test_query_counter(self):
        resolver = _make_resolver()
        resolver.handle_query(DnsMessage.query(1, "www.google.com"))
        resolver.handle_query(DnsMessage.query(2, "mail.google.com"))
        assert resolver.stats["queries"] == 2

    def test_zone_for_longest_match(self):
        resolver = _make_resolver()
        assert resolver.zone_for("deep.sub.google.com").origin == "google.com"
        assert resolver.zone_for("unknown.org") is None
