"""Smoke tests: every example script runs to completion and prints the
headline it promises."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": "Per-protocol tagging success",
    "encrypted_policy_enforcement.py": "flows blocked",
    "cdn_content_discovery.py": "hosted on Amazon EC2",
    "service_tag_discovery.py": "Per-port service tags",
    "pcap_roundtrip.py": "labels recovered from raw bytes",
    "anomaly_detection.py": "alerts raised",
}


@pytest.mark.parametrize("script,expected", sorted(CASES.items()))
def test_example_runs(script, expected, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert expected in output


def test_examples_directory_complete():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(CASES), (
        "examples directory and smoke-test table out of sync"
    )
