"""Graceful-shutdown coverage for durable-ingest pipelines (ISSUE 6,
satellite 3).

The contract: a pipeline with an attached flow store never loses an
acknowledged flow on shutdown, whichever way the shutdown happens —

* a clean ``close()`` drains and seals the store (reopen finds every
  flow in segments, nothing to replay);
* an *unclean* exit (no close at all) leaves the drained tail in the
  write-ahead journal, and the next open replays it;
* SIGTERM on a live process triggers the installed handler, which
  closes the pipeline and then re-delivers the signal so the exit
  status still says "terminated by SIGTERM".
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

from repro.analytics.storage import FlowStore
from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.net.ip import ip_from_str
from repro.sniffer.pipeline import SnifferPipeline

CLIENT = ip_from_str("10.1.0.5")
WEB = ip_from_str("93.184.216.34")


def _events(flows: int):
    """One DNS insert, then ``flows`` sessions to the answer — every
    flow reaches the tagger (and so the store), odd ones unlabeled."""
    out = [DnsObservation(1.0, CLIENT, "www.example.com", [WEB])]
    for i in range(flows):
        out.append(FlowRecord(
            fid=FiveTuple(CLIENT, WEB + i % 2, 40_000 + i, 443,
                          TransportProto.TCP),
            start=1.5 + i,
            end=2.0 + i,
            protocol=Protocol.TLS,
            bytes_up=100 + i,
            bytes_down=2_000 + i,
            packets=6,
        ))
    return out


class TestGracefulClose:
    def test_close_seals_every_acknowledged_flow(self, tmp_path):
        directory = tmp_path / "store"
        pipeline = SnifferPipeline(
            clist_size=64, warmup=0.0, flow_store=str(directory)
        )
        pipeline.process_events(_events(25))
        pipeline.close()
        store = FlowStore(directory)
        assert len(store) == 25
        # Sealed means sealed: nothing was left for journal replay.
        assert store.health()["wal"]["recovered_rows"] == 0
        assert store.fqdns() == ["www.example.com"]
        store.close()

    def test_unclosed_pipeline_recovers_through_the_journal(
        self, tmp_path
    ):
        directory = tmp_path / "store"
        pipeline = SnifferPipeline(
            clist_size=64, warmup=0.0, flow_store=str(directory)
        )
        pipeline.process_events(_events(25))
        # No close(): the process "dies" here.  The drained tail was
        # journaled when the store acknowledged it, so a clean reopen
        # replays it in full.
        pipeline.flow_store._wal.close()
        store = FlowStore(directory)
        assert len(store) == 25
        assert store.health()["wal"]["recovered_rows"] == 25
        assert store.fqdns() == ["www.example.com"]
        store.close()

    def test_fanout_close_seals_every_acknowledged_flow(self, tmp_path):
        directory = tmp_path / "store"
        pipeline = SnifferPipeline(
            clist_size=64, warmup=0.0, processes=2,
            flow_store=str(directory),
        )
        pipeline.process_events(_events(40))
        assert pipeline.fanout_report.flows == 40
        pipeline.close()
        store = FlowStore(directory)
        assert len(store) == 40
        assert store.health()["status"] == "ok"
        store.close()


_CHILD = textwrap.dedent("""
    import signal, sys, time

    from repro.net.flow import (
        DnsObservation, FiveTuple, FlowRecord, Protocol, TransportProto,
    )
    from repro.net.ip import ip_from_str
    from repro.sniffer.pipeline import SnifferPipeline

    CLIENT = ip_from_str("10.1.0.5")
    WEB = ip_from_str("93.184.216.34")

    pipeline = SnifferPipeline(
        clist_size=64, warmup=0.0, flow_store=sys.argv[1]
    )
    pipeline.install_signal_handlers()
    events = [DnsObservation(1.0, CLIENT, "www.example.com", [WEB])]
    for i in range(30):
        events.append(FlowRecord(
            fid=FiveTuple(CLIENT, WEB, 40_000 + i, 443,
                          TransportProto.TCP),
            start=1.5 + i, end=2.0 + i, protocol=Protocol.TLS,
            bytes_up=100, bytes_down=2000, packets=6,
        ))
    pipeline.process_events(events)
    print(f"READY {len(pipeline.tagged_flows)}", flush=True)
    time.sleep(60)          # SIGTERM interrupts this
""")


class TestSigterm:
    def test_sigterm_seals_the_store_and_keeps_the_exit_status(
        self, tmp_path
    ):
        directory = tmp_path / "store"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD, str(directory)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            line = child.stdout.readline().strip()
            assert line == "READY 30", line
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        # The handler re-delivers the signal after closing, so the
        # process still reports death-by-SIGTERM to its supervisor.
        assert child.returncode == -signal.SIGTERM, child.stderr.read()
        store = FlowStore(directory)
        assert len(store) == 30
        # close() ran: the tail was sealed, not merely journaled.
        assert store.health()["wal"]["recovered_rows"] == 0
        assert store.fqdns() == ["www.example.com"]
        store.close()
