"""Pruning soundness: skipping segments must never change an answer.

The segment-pruning metadata (:class:`repro.analytics.storage.SegmentMeta`)
lets the durable store skip — never materialize — sealed segments that
provably cannot contribute to a query.  That optimisation is only
admissible if it is invisible: for random flow sets and random
time/server/FQDN/2LD predicates, a pruned query over a spilled (and
compacted) store must equal the same query with pruning disabled
(``FlowStore(prune=False)``, the PR4 scan-everything pass), the
in-memory columnar :class:`FlowDatabase` and the seed
``database_reference`` row store — with and without numpy.

Alongside the property suite: backward compatibility (a metadata-less
version-1 store opens and answers identically; compaction upgrades it),
and metadata corruption (a footer whose ranges lie is caught by
``repro-flowstore verify``; a truncated metadata block is rejected
atomically at open).
"""

import json
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analytics.database as database_module
from repro.analytics.database import FlowDatabase
from repro.analytics.database_reference import (
    FlowDatabase as ReferenceDatabase,
)
from repro.analytics.flowstore_cli import main as flowstore_main
from repro.analytics.storage import (
    _BLOCK_LEN,
    _HEADER,
    _META_FIXED,
    _N_BLOCKS,
    FORMAT_VERSION_V1,
    FlowStore,
    PresenceFilter,
    QueryHint,
    SegmentMeta,
    StorageError,
    write_segment,
)
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u48 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFF)
finite = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-3600.0, max_value=86400.0,
)
# Small pools force both hits and misses per predicate: probed labels /
# servers / windows land inside some segments and outside others, which
# is exactly the regime pruning must stay invisible in.
LABEL_POOL = (
    "www.google.com", "WWW.Google.COM", "mail.google.com",
    "cdn1.fbcdn.net", "static.bbc.co.uk", "a.b.c.example.org",
    "tracker.appspot.com", "x",
)
labels = st.none() | st.sampled_from(("",) + LABEL_POOL) | st.text(
    min_size=1, max_size=12
)
addresses = st.integers(min_value=1, max_value=30) | st.sampled_from(
    [0x80000000, 0xDEADBEEF, 0xFFFFFFFF]
)

flows = st.builds(
    FlowRecord,
    fid=st.builds(
        FiveTuple,
        client_ip=addresses,
        server_ip=addresses,
        src_port=u16,
        dst_port=st.sampled_from([80, 443, 51413]),
        proto=st.sampled_from(TransportProto),
    ),
    start=finite,
    end=finite,
    protocol=st.sampled_from(Protocol),
    bytes_up=u48,
    bytes_down=u48,
    packets=u32,
    fqdn=labels,
    cert_name=st.none() | st.sampled_from(["cert.example.com"]),
    true_fqdn=st.none(),
)

flow_lists = st.lists(flows, min_size=0, max_size=40)
spill_sizes = st.integers(min_value=1, max_value=15)
windows = st.tuples(finite, finite).map(sorted).map(tuple) | st.tuples(
    st.just(-10000.0), st.just(-9000.0)
)
server_probes = st.lists(addresses, min_size=0, max_size=6)
fqdn_probes = st.sampled_from(
    LABEL_POOL + ("missing.example.net", "TRACKER.appspot.com")
)


@contextmanager
def _without_numpy():
    saved = database_module._np
    database_module._np = None
    try:
        yield
    finally:
        database_module._np = saved


def _spill(tmp_path, flow_list, spill_rows) -> Path:
    directory = tmp_path / "store"
    store = FlowStore(directory, spill_rows=spill_rows)
    store.add_all(flow_list)
    store.close()
    return directory


def _assert_predicates_identical(
    pruned, unpruned, mem, ref, window, servers, fqdn
):
    """One predicate set, four stores, every pruning-sensitive call."""
    t0, t1 = window
    sld = ".".join(fqdn.split(".")[-2:]).lower()
    # Label / 2LD keyed queries (presence-filter pruning).
    assert pruned.query_by_fqdn(fqdn) == unpruned.query_by_fqdn(fqdn)
    assert pruned.query_by_fqdn(fqdn) == ref.query_by_fqdn(fqdn)
    assert list(pruned.rows_for_fqdn(fqdn)) == list(
        mem.rows_for_fqdn(fqdn)
    )
    assert pruned.servers_for_fqdn(fqdn) == ref.servers_for_fqdn(fqdn)
    assert pruned.server_bins_for_fqdn(fqdn, 600.0) == (
        mem.server_bins_for_fqdn(fqdn, 600.0)
    )
    assert pruned.query_by_domain(sld) == ref.query_by_domain(sld)
    assert list(pruned.rows_for_domain(sld)) == list(
        mem.rows_for_domain(sld)
    )
    assert pruned.servers_for_domain(sld) == ref.servers_for_domain(sld)
    assert pruned.unique_servers_per_bin(sld, 600.0) == (
        mem.unique_servers_per_bin(sld, 600.0)
    )
    # Server-set queries (address-range pruning).
    assert pruned.query_by_servers(servers) == unpruned.query_by_servers(
        servers
    )
    assert pruned.query_by_servers(servers) == ref.query_by_servers(
        servers
    )
    assert list(pruned.rows_for_servers(servers)) == list(
        mem.rows_for_servers(servers)
    )
    assert pruned.fqdns_for_servers(servers) == ref.fqdns_for_servers(
        servers
    )
    # Time-window queries (start-range pruning) and the grouped
    # aggregations driven by their row sets.
    rows_p = pruned.rows_in_window(t0, t1)
    rows_u = unpruned.rows_in_window(t0, t1)
    rows_m = mem.rows_in_window(t0, t1)
    assert list(rows_p) == list(rows_u) == list(rows_m)
    window_records = pruned.query_in_window(t0, t1)
    assert window_records == unpruned.query_in_window(t0, t1)
    assert window_records == ref.query_in_window(t0, t1)
    assert window_records == mem.query_in_window(t0, t1)
    assert pruned.fqdn_server_counts(rows_p) == sorted(
        mem.fqdn_server_counts(rows_m)
    )
    assert pruned.fqdn_flow_byte_totals(rows_p) == sorted(
        mem.fqdn_flow_byte_totals(rows_m)
    )
    assert pruned.server_flow_counts(rows_p) == dict(sorted(
        mem.server_flow_counts(rows_m).items()
    ))
    assert sorted(pruned.sld_flow_stats(rows_p)) == sorted(
        mem.sld_flow_stats(rows_m)
    )
    assert pruned.fqdns_for_rows(rows_p) == mem.fqdns_for_rows(rows_m)
    assert pruned.fqdn_first_seen(rows_p) == mem.fqdn_first_seen(rows_m)
    assert pruned.fqdn_bin_pairs(600.0, rows_p) == mem.fqdn_bin_pairs(
        600.0, rows_m
    )


class TestPruningSoundness:
    @settings(deadline=None)
    @given(flow_lists, spill_sizes, windows, server_probes, fqdn_probes)
    def test_pruned_equals_unpruned_and_memory_stores(
        self, tmp_path_factory, flow_list, spill_rows, window, servers,
        fqdn,
    ):
        tmp_path = tmp_path_factory.mktemp("prune")
        directory = _spill(tmp_path, flow_list, spill_rows)
        pruned = FlowStore(directory)
        unpruned = FlowStore(directory, prune=False)
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        _assert_predicates_identical(
            pruned, unpruned, mem, ref, window, servers, fqdn
        )

    @settings(deadline=None)
    @given(flow_lists, spill_sizes, windows, server_probes, fqdn_probes)
    def test_pruning_sound_after_compaction(
        self, tmp_path_factory, flow_list, spill_rows, window, servers,
        fqdn,
    ):
        """Compacted segments carry freshly-computed metadata; pruning
        over them must stay invisible too (partial compaction keeps a
        mix of merged and original segments)."""
        tmp_path = tmp_path_factory.mktemp("prune")
        directory = _spill(tmp_path, flow_list, spill_rows)
        store = FlowStore(directory)
        store.compact(small_rows=max(2, spill_rows))
        pruned = FlowStore(directory)
        unpruned = FlowStore(directory, prune=False)
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        _assert_predicates_identical(
            pruned, unpruned, mem, ref, window, servers, fqdn
        )

    @settings(deadline=None, max_examples=25)
    @given(flow_lists, spill_sizes, windows, server_probes, fqdn_probes)
    def test_pruning_sound_without_numpy(
        self, tmp_path_factory, flow_list, spill_rows, window, servers,
        fqdn,
    ):
        tmp_path = tmp_path_factory.mktemp("prune")
        with _without_numpy():
            directory = _spill(tmp_path, flow_list, spill_rows)
            pruned = FlowStore(directory)
            unpruned = FlowStore(directory, prune=False)
            mem = FlowDatabase.from_flows(flow_list)
            ref = ReferenceDatabase.from_flows(flow_list)
            _assert_predicates_identical(
                pruned, unpruned, mem, ref, window, servers, fqdn
            )

    @settings(deadline=None, max_examples=25)
    @given(flow_lists, spill_sizes, windows, server_probes, fqdn_probes)
    def test_live_tail_included_in_pruned_queries(
        self, tmp_path_factory, flow_list, spill_rows, window, servers,
        fqdn,
    ):
        """The unsealed tail has no metadata and must always be
        scanned — a mid-session store (segments + live tail) answers
        like the in-memory one under every predicate."""
        tmp_path = tmp_path_factory.mktemp("prune")
        store = FlowStore(tmp_path / "store", spill_rows=spill_rows)
        store.add_all(flow_list)  # no close: tail stays live
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        _assert_predicates_identical(
            store, store, mem, ref, window, servers, fqdn
        )

    @settings(deadline=None)
    @given(flow_lists, spill_sizes, windows, server_probes, fqdn_probes)
    def test_prune_report_never_prunes_a_contributing_segment(
        self, tmp_path_factory, flow_list, spill_rows, window, servers,
        fqdn,
    ):
        """Soundness at the report level: any segment the metadata
        would skip holds zero rows matching the predicate."""
        tmp_path = tmp_path_factory.mktemp("prune")
        directory = _spill(tmp_path, flow_list, spill_rows)
        store = FlowStore(directory)
        t0, t1 = window
        for hint, matcher in (
            (
                QueryHint(window=(t0, t1)),
                lambda db: db.rows_in_window(t0, t1),
            ),
            (
                QueryHint(fqdn=fqdn.lower()),
                lambda db: db.rows_for_fqdn(fqdn),
            ),
            (
                QueryHint(servers=list(dict.fromkeys(servers))),
                lambda db: db.rows_for_servers(servers),
            ),
        ):
            report = store.prune_report(hint)
            by_name = {
                entry["name"]: entry["scan"]
                for entry in report["segments"]
            }
            for reader in store.segments:
                if not by_name[reader.name]:
                    assert not len(matcher(reader.database()))


def _flow(i: int, fqdn="www.Example.com", start=None) -> FlowRecord:
    return FlowRecord(
        fid=FiveTuple(10 + i % 5, 20 + i % 3, 1024 + i, 443,
                      TransportProto.TCP),
        start=float(i) if start is None else start,
        end=(float(i) if start is None else start) + 1.5,
        protocol=Protocol.TLS,
        bytes_up=100 + i,
        bytes_down=2000 + i,
        packets=12,
        fqdn=fqdn if i % 4 else None,
        cert_name="cert.example.com" if i % 2 else None,
    )


class TestNonFiniteTimestamps:
    """A NaN/inf timestamp would poison segment time ranges and let
    window pruning silently drop valid rows — ingestion must reject it
    before any state is touched, on both ingest paths and both numpy
    legs."""

    def _bad_flows(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            yield _flow(1, start=bad)
        yield FlowRecord(
            fid=FiveTuple(1, 2, 3, 443, TransportProto.TCP),
            start=5.0, end=float("nan"), protocol=Protocol.TLS,
            bytes_up=1, bytes_down=1, packets=1, fqdn="a.example.com",
        )

    def test_add_rejects_non_finite_atomically(self):
        db = FlowDatabase()
        for bad_flow in self._bad_flows():
            with pytest.raises(ValueError, match="non-finite"):
                db.add(bad_flow)
        assert len(db) == 0

    def test_ingest_batch_rejects_non_finite_atomically(self):
        from repro.sniffer.eventcodec import CodecError, encode_events

        good = [_flow(i) for i in range(4)]
        db = FlowDatabase.from_flows(good)
        for bad_flow in self._bad_flows():
            payload = encode_events(good + [bad_flow])
            with pytest.raises(CodecError, match="non-finite"):
                db.ingest_batch(payload)
        assert len(db) == 4
        assert db.time_span() == (
            FlowDatabase.from_flows(good).time_span()
        )

    def test_rejection_without_numpy(self, tmp_path):
        from repro.sniffer.eventcodec import CodecError, encode_events

        with _without_numpy():
            store = FlowStore(tmp_path / "s", spill_rows=4)
            for bad_flow in self._bad_flows():
                with pytest.raises(ValueError, match="non-finite"):
                    store.add(bad_flow)
                with pytest.raises(CodecError, match="non-finite"):
                    store.ingest_batch(encode_events([bad_flow]))
            assert len(store) == 0

    def test_window_predicate_is_conservative_under_nan(self):
        # Defense in depth: were a NaN bound ever to reach a footer,
        # the segment must be scanned, not silently pruned.
        meta = SegmentMeta()
        meta.min_start = meta.max_start = float("nan")
        assert meta.may_overlap_window(0.0, 100.0)


class TestPresenceFilter:
    def test_no_false_negatives(self):
        values = [f"host{i}.example{i % 7}.org" for i in range(500)]
        built = PresenceFilter.build(values)
        for value in values:
            assert value in built

    def test_empty_filter_rejects_everything(self):
        assert "anything" not in PresenceFilter.build([])

    def test_deterministic_and_order_independent(self):
        values = [f"h{i}.example.com" for i in range(64)]
        assert PresenceFilter.build(values).data == (
            PresenceFilter.build(list(reversed(values))).data
        )

    def test_size_is_bounded_power_of_two(self):
        big = PresenceFilter.build(
            [f"x{i}.example.com" for i in range(100_000)]
        )
        assert len(big.data) == (1 << 15) // 8
        length = len(PresenceFilter.build(["a"]).data)
        assert length == 8  # 64-bit floor
        with pytest.raises(StorageError):
            PresenceFilter(b"\x00" * 12)  # not a power of two


class TestVersion1Compat:
    """Metadata-less PR4-era stores must keep answering correctly."""

    def _write_v1_store(self, directory: Path, flow_list, per_segment=8):
        directory.mkdir(parents=True)
        names = []
        for pos in range(0, len(flow_list), per_segment):
            db = FlowDatabase.from_flows(
                flow_list[pos:pos + per_segment]
            )
            name = f"seg-{len(names) + 1:08d}.fseg"
            write_segment(
                directory / name, db, version=FORMAT_VERSION_V1
            )
            names.append(name)
        (directory / "MANIFEST.json").write_text(
            json.dumps({"format": 1, "segments": names}) + "\n"
        )
        return names

    def test_v1_store_reopens_and_answers_identically(self, tmp_path):
        flow_list = [_flow(i) for i in range(30)]
        directory = tmp_path / "v1store"
        self._write_v1_store(directory, flow_list)
        store = FlowStore(directory)
        assert all(seg.version == 1 for seg in store.segments)
        assert all(seg.meta is None for seg in store.segments)
        mem = FlowDatabase.from_flows(flow_list)
        ref = ReferenceDatabase.from_flows(flow_list)
        assert list(store) == list(ref)
        assert store.fqdns() == ref.fqdns()
        assert store.fqdn_server_counts() == sorted(
            mem.fqdn_server_counts()
        )
        assert store.query_by_fqdn("www.example.COM") == (
            ref.query_by_fqdn("www.example.COM")
        )
        assert list(store.rows_in_window(4.0, 11.0)) == list(
            mem.rows_in_window(4.0, 11.0)
        )
        assert store.time_span() == ref.time_span()
        # Without metadata nothing is ever pruned.
        report = store.prune_report(QueryHint(fqdn="missing.example.net"))
        assert report["pruned_segments"] == 0

    def test_v1_store_spill_upgrades_manifest_and_new_segments(
        self, tmp_path
    ):
        flow_list = [_flow(i) for i in range(20)]
        directory = tmp_path / "v1store"
        self._write_v1_store(directory, flow_list)
        store = FlowStore(directory, spill_rows=4)
        store.add_all(_flow(100 + i) for i in range(4))
        store.flush()
        manifest = json.loads(
            (directory / "MANIFEST.json").read_text()
        )
        assert manifest["format"] == 2
        entries = {
            entry["name"]: entry for entry in manifest["segments"]
        }
        old = [n for n in entries if n != store.segments[-1].name]
        assert all(entries[name]["meta"] is None for name in old)
        assert entries[store.segments[-1].name]["meta"] is not None
        assert store.segments[-1].version == 2
        reopened = FlowStore(directory)
        assert len(reopened) == 24

    def test_compaction_upgrades_v1_segments(self, tmp_path):
        flow_list = [_flow(i) for i in range(24)]
        directory = tmp_path / "v1store"
        self._write_v1_store(directory, flow_list)
        store = FlowStore(directory)
        store.compact()
        assert len(store.segments) == 1
        assert store.segments[0].version == 2
        assert store.segments[0].meta is not None
        ref = ReferenceDatabase.from_flows(flow_list)
        assert list(FlowStore(directory)) == list(ref)
        # The upgraded segment now prunes.
        report = FlowStore(directory).prune_report(
            QueryHint(window=(5000.0, 6000.0))
        )
        assert report["pruned_segments"] == 1

    def test_verify_accepts_v1_segments(self, tmp_path, capsys):
        directory = tmp_path / "v1store"
        self._write_v1_store(directory, [_flow(i) for i in range(12)])
        assert flowstore_main(["verify", str(directory)]) == 0
        assert "v1 segment" in capsys.readouterr().out

    def test_v1_nan_timestamps_upgrade_cleanly(self, tmp_path, capsys):
        """PR4-era stores predate the finite-timestamp ingest check, so
        a legacy segment can hold a NaN start.  Upgrading it via
        compact() must produce a footer that verify agrees with (ranges
        are computed over finite values only, identically on the seal
        and verify paths), and window queries — which a NaN start can
        never match — must keep working."""
        directory = tmp_path / "v1store"
        directory.mkdir()
        db = FlowDatabase.from_flows([_flow(i) for i in range(6)])
        db.columns.start[2] = float("nan")  # legacy data, pre-check
        write_segment(
            directory / "seg-00000001.fseg", db,
            version=FORMAT_VERSION_V1,
        )
        db2 = FlowDatabase.from_flows([_flow(10 + i) for i in range(6)])
        write_segment(
            directory / "seg-00000002.fseg", db2,
            version=FORMAT_VERSION_V1,
        )
        (directory / "MANIFEST.json").write_text(json.dumps({
            "format": 1,
            "segments": ["seg-00000001.fseg", "seg-00000002.fseg"],
        }))
        store = FlowStore(directory)
        store.compact()
        assert flowstore_main(["verify", str(directory)]) == 0
        assert "metadata ok" in capsys.readouterr().out
        reopened = FlowStore(directory)
        # 12 rows on disk; the NaN-start row matches no window.
        assert len(reopened) == 12
        assert len(reopened.rows_in_window(-1e9, 1e9)) == 11

    def test_inspect_reports_v1_segments(self, tmp_path, capsys):
        """An operator triaging v1 compat must see the on-disk
        versions, not just the store's write format."""
        directory = tmp_path / "v1store"
        self._write_v1_store(directory, [_flow(i) for i in range(12)])
        assert flowstore_main(["inspect", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "2x v1" in out and "compact upgrades" in out


def _patch_segment_meta(path: Path, mutate) -> None:
    """Rewrite a v2 segment's metadata block in place (CRC kept
    consistent), simulating an external tool whose footer lies."""
    data = bytearray(path.read_bytes())
    lengths = []
    pos = _HEADER.size
    for _ in range(_N_BLOCKS):
        (length,) = _BLOCK_LEN.unpack_from(data, pos)
        lengths.append(length)
        pos += _BLOCK_LEN.size
    body = pos
    meta_offset = body + sum(lengths[:-1])
    raw = bytes(data[meta_offset:meta_offset + lengths[-1]])
    replacement = mutate(raw)
    assert len(replacement) == lengths[-1]
    data[meta_offset:meta_offset + lengths[-1]] = replacement
    crc = zlib.crc32(memoryview(data)[body:])
    struct.pack_into("<I", data, 24, crc)  # crc field of the header
    path.write_bytes(bytes(data))


class TestMetadataCorruption:
    def _store(self, tmp_path):
        directory = tmp_path / "store"
        store = FlowStore(directory, spill_rows=8)
        store.add_all(_flow(i) for i in range(20))
        store.close()
        return directory, sorted(directory.glob("seg-*.fseg"))

    def test_lying_ranges_detected_by_verify(self, tmp_path, capsys):
        directory, segments = self._store(tmp_path)

        def narrow(raw: bytes) -> bytes:
            meta = SegmentMeta.decode(raw)
            meta.min_start, meta.max_start = 9000.0, 9001.0
            return meta.encode()

        _patch_segment_meta(segments[0], narrow)
        # CRC is consistent, so the store opens — and would silently
        # mis-prune a window query...
        store = FlowStore(directory)
        assert len(store.rows_in_window(0.0, 100.0)) < 20
        # ...which is exactly what verify exists to catch.
        assert flowstore_main(["verify", str(directory)]) == 1
        captured = capsys.readouterr()
        assert "does not match segment contents" in captured.out
        assert "failed" in captured.err

    def test_lying_filter_detected_by_verify(self, tmp_path, capsys):
        directory, segments = self._store(tmp_path)

        def blank_filter(raw: bytes) -> bytes:
            meta = SegmentMeta.decode(raw)
            meta.fqdn_filter = PresenceFilter(
                b"\x00" * len(meta.fqdn_filter.data)
            )
            return meta.encode()

        _patch_segment_meta(segments[1], blank_filter)
        assert flowstore_main(["verify", str(directory)]) == 1
        assert "does not match" in capsys.readouterr().out

    def test_truncated_metadata_block_rejected_atomically(
        self, tmp_path
    ):
        directory, segments = self._store(tmp_path)
        good = segments[0].read_bytes()

        def lie_about_filter_length(raw: bytes) -> bytes:
            # Claim a fqdn filter longer than the block holds: the
            # fixed part's length fields no longer add up and the open
            # must fail before any state is built.
            fields = list(_META_FIXED.unpack_from(raw, 0))
            fields[9] += 8
            return _META_FIXED.pack(*fields) + raw[_META_FIXED.size:]

        _patch_segment_meta(segments[0], lie_about_filter_length)
        with pytest.raises(StorageError, match="metadata"):
            FlowStore(directory, strict=True)
        # A failed strict open leaves nothing behind that blocks a
        # repair: restoring the file restores the store.
        segments[0].write_bytes(good)
        assert len(FlowStore(directory, strict=True)) == 20

    def test_metadata_bit_flip_fails_crc(self, tmp_path):
        directory, segments = self._store(tmp_path)
        raw = bytearray(segments[0].read_bytes())
        raw[-3] ^= 0xFF  # inside the metadata block, CRC not fixed up
        segments[0].write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            FlowStore(directory, strict=True)
