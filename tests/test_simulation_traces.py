"""Tests for client behaviour, traffic generation and trace building."""

import random

import pytest

from repro.net.flow import DnsObservation, FlowRecord, Protocol
from repro.simulation.client import Client, ClientProfile
from repro.simulation.diurnal import activity_at, pool_scale
from repro.simulation.internet import build_internet
from repro.simulation.p2p import PEER_BLOCKS, PeerSwarm
from repro.simulation.tls import certificate_name
from repro.simulation.trace import (
    TRACE_PROFILES,
    build_live_deployment,
    build_trace,
)
from repro.simulation.traffic import generate_events, session_times, split_events
from repro.simulation.entities import CertPolicy, Organization


@pytest.fixture(scope="module")
def internet():
    return build_internet("EU", seed=5)


@pytest.fixture(scope="module")
def small_trace():
    return build_trace("EU1-FTTH", seed=3)


class TestDiurnal:
    def test_mean_is_one(self):
        samples = [activity_at(h * 3600.0) for h in range(24)]
        assert sum(samples) / 24 == pytest.approx(1.0, abs=0.05)

    def test_evening_peak(self):
        assert activity_at(21 * 3600.0) > 3 * activity_at(4 * 3600.0)

    def test_timezone_shift(self):
        # 20:00 GMT is 21:00 EU local, peak; but 15:00 US-East local.
        assert activity_at(20 * 3600.0, 1.0) > activity_at(20 * 3600.0, -5.0)

    def test_pool_scale_bounds(self):
        for hour in range(24):
            scale = pool_scale(hour * 3600.0)
            assert 0.3 <= scale <= 1.0


class TestSessionTimes:
    def test_rate_scales_count(self):
        rng = random.Random(1)
        few = session_times(rng, 0, 36000, 2.0, 1.0)
        rng = random.Random(1)
        many = session_times(rng, 0, 36000, 20.0, 1.0)
        assert len(many) > len(few) * 4

    def test_zero_rate(self):
        assert session_times(random.Random(1), 0, 3600, 0.0, 1.0) == []

    def test_times_in_window_and_sorted(self):
        times = session_times(random.Random(2), 100.0, 4000.0, 30.0, 1.0)
        assert all(100.0 <= t < 4000.0 for t in times)
        assert times == sorted(times)


class TestClient:
    def _client(self, internet, **kwargs):
        profile = ClientProfile(**kwargs)
        return Client(
            ip=0x0A010101,
            profile=profile,
            internet=internet,
            rng=random.Random(42),
            swarm=PeerSwarm(random.Random(1), size=50),
        )

    def test_session_emits_dns_then_flow(self, internet):
        client = self._client(internet, prefetch_probability=0.0,
                              embed_probability=0.0)
        out = []
        client.run_session(1000.0, out)
        observations = [e for e in out if isinstance(e, DnsObservation)]
        flows = [e for e in out if isinstance(e, FlowRecord)]
        assert len(observations) == 1
        assert len(flows) == 1
        assert flows[0].start >= observations[0].timestamp
        assert flows[0].fid.server_ip in observations[0].answers

    def test_cache_suppresses_second_resolution(self, internet):
        client = self._client(internet, prefetch_probability=0.0,
                              embed_probability=0.0)
        out = []
        # Many sessions close together: favourites repeat, cache hits.
        for i in range(30):
            client.run_session(1000.0 + i * 10, out)
        observations = [e for e in out if isinstance(e, DnsObservation)]
        flows = [e for e in out if isinstance(e, FlowRecord)]
        assert len(observations) < len(flows)

    def test_prewarm_emits_nothing(self, internet):
        client = self._client(internet)
        out = []
        client.prewarm(entries_count=10, now=0.0)
        assert out == []
        assert len(client.cache) > 0

    def test_prewarmed_flow_has_no_dns(self, internet):
        client = self._client(internet, prefetch_probability=0.0,
                              embed_probability=0.0)
        client.prewarm(entries_count=14, now=0.0)
        out = []
        client.run_session(10.0, out)
        flows = [e for e in out if isinstance(e, FlowRecord)]
        observations = [e for e in out if isinstance(e, DnsObservation)]
        if not observations:  # cache hit: flow with no visible resolution
            assert flows

    def test_tls_flow_carries_certificate(self, internet):
        client = self._client(internet, prefetch_probability=0.0,
                              embed_probability=0.0)
        tls_flows = []
        out = []
        for i in range(200):
            client.run_session(i * 30.0, out)
        tls_flows = [
            e for e in out
            if isinstance(e, FlowRecord) and e.protocol is Protocol.TLS
        ]
        assert tls_flows, "client should hit some TLS services"
        named = [f for f in tls_flows if f.cert_name is not None]
        assert named, "most TLS flows should carry a certificate"

    def test_p2p_rounds_have_no_dns(self, internet):
        client = self._client(
            internet, is_p2p=True, tracker_announce_probability=0.0
        )
        out = []
        for i in range(10):
            client._p2p_session(i * 100.0, out)
        p2p_flows = [
            e for e in out
            if isinstance(e, FlowRecord) and e.protocol is Protocol.P2P
        ]
        assert p2p_flows
        assert not any(isinstance(e, DnsObservation) for e in out)
        for flow in p2p_flows:
            assert any(
                flow.fid.server_ip in block for block in PEER_BLOCKS
            )

    def test_tunneled_client_single_destination(self, internet):
        client = self._client(internet, is_tunneled=True)
        out = []
        for i in range(10):
            client.run_session(i * 100.0, out)
        servers = {e.fid.server_ip for e in out if isinstance(e, FlowRecord)}
        assert len(servers) == 1
        assert not any(isinstance(e, DnsObservation) for e in out)


class TestCertificateName:
    def _org(self, policy, cdn_name=""):
        return Organization(
            domain="example.com", cert_policy=policy, cert_cdn_name=cdn_name
        )

    def test_policies(self):
        rng = random.Random(1)
        assert certificate_name(
            self._org(CertPolicy.EXACT), "a.example.com", rng, 0.0
        ) == "a.example.com"
        assert certificate_name(
            self._org(CertPolicy.WILDCARD), "a.example.com", rng, 0.0
        ) == "*.example.com"
        assert certificate_name(
            self._org(CertPolicy.ORG_GENERIC), "a.example.com", rng, 0.0
        ) == "www.example.com"
        assert certificate_name(
            self._org(CertPolicy.CDN_NAME, "a248.e.akamai.net"),
            "a.example.com", rng, 0.0,
        ) == "a248.e.akamai.net"

    def test_resumption_gives_none(self):
        rng = random.Random(1)
        out = [
            certificate_name(
                self._org(CertPolicy.EXACT), "a.example.com", rng, 1.0
            )
            for _ in range(5)
        ]
        assert out == [None] * 5


class TestGenerateEvents:
    def test_sorted_stream(self, internet):
        clients = [
            Client(
                ip=0x0A010100 + i,
                profile=ClientProfile(session_rate_per_hour=20.0),
                internet=internet,
                rng=random.Random(i),
            )
            for i in range(3)
        ]
        events = generate_events(clients, 0.0, 3600.0)
        times = [
            e.timestamp if isinstance(e, DnsObservation) else e.start
            for e in events
        ]
        assert times == sorted(times)

    def test_split_events(self, internet):
        clients = [
            Client(
                ip=0x0A010100,
                profile=ClientProfile(session_rate_per_hour=20.0),
                internet=internet,
                rng=random.Random(9),
            )
        ]
        events = generate_events(clients, 0.0, 3600.0)
        observations, flows = split_events(events)
        assert len(observations) + len(flows) == len(events)


class TestBuildTrace:
    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            build_trace("MARS-5G")

    def test_profiles_exist(self):
        assert set(TRACE_PROFILES) == {
            "US-3G", "EU2-ADSL", "EU1-ADSL1", "EU1-ADSL2", "EU1-FTTH",
            "EU1-ADSL2-24H",
        }

    def test_trace_structure(self, small_trace):
        assert small_trace.name == "EU1-FTTH"
        assert len(small_trace.flows) > 1000
        assert len(small_trace.observations) > 500
        assert small_trace.peak_dns_rate_per_min() > 0
        summary = small_trace.summary()
        assert summary["start_gmt"] == "17:00"
        assert summary["tcp_flows"] == len(small_trace.flows)

    def test_reproducible(self):
        t1 = build_trace("EU1-FTTH", seed=11)
        t2 = build_trace("EU1-FTTH", seed=11)
        assert len(t1.flows) == len(t2.flows)
        assert [f.fid for f in t1.flows[:50]] == [f.fid for f in t2.flows[:50]]

    def test_different_seeds_differ(self):
        t1 = build_trace("EU1-FTTH", seed=11)
        t2 = build_trace("EU1-FTTH", seed=12)
        assert [f.fid for f in t1.flows[:50]] != [f.fid for f in t2.flows[:50]]

    def test_flows_within_duration(self, small_trace):
        for flow in small_trace.flows[:500]:
            assert 0 <= flow.start <= small_trace.duration + 700

    def test_to_packets_roundtrip(self, small_trace):
        from repro.net.packet import decode_frame

        records = small_trace.to_packets(max_flows=5)
        assert records
        for record in records[:50]:
            packet = decode_frame(record.timestamp, record.data)
            assert packet.transport is not None


class TestLiveDeployment:
    @pytest.fixture(scope="class")
    def live(self):
        return build_live_deployment(days=4, seed=5, n_clients=20)

    def test_flows_sorted_and_tagged(self, live):
        assert all(
            live.flows[i].start <= live.flows[i + 1].start
            for i in range(0, min(len(live.flows) - 1, 2000))
        )
        assert all(f.fqdn for f in live.flows[:2000])

    def test_fqdn_universe_grows(self, live):
        """New FQDNs keep appearing day after day (Fig. 6)."""
        day_fqdns = []
        seen: set[str] = set()
        for day in range(live.days):
            new = {
                f.fqdn for f in live.flows
                if day * 86400 <= f.start < (day + 1) * 86400
                and f.fqdn not in seen
            }
            day_fqdns.append(len(new))
            seen |= new
        assert all(count > 0 for count in day_fqdns[1:])

    def test_trackers_present(self, live):
        assert len(live.tracker_fqdns) == 45
        tracker_flows = [
            f for f in live.flows if f.fqdn in set(live.tracker_fqdns)
        ]
        assert tracker_flows
        assert all(f.protocol is Protocol.P2P for f in tracker_flows)
