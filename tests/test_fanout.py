"""Multi-process fan-out: differential equality, streaming, lifecycle."""

import random

import pytest

from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.sniffer.fanout import (
    FanoutError,
    FanoutPipeline,
    shard_of,
    _np,
)
from repro.sniffer.pipeline import SnifferPipeline
from repro.sniffer.resolver import DnsResolver, fuse_key
from repro.sniffer.sharding import ShardedResolver

CONSUME_PATHS = [False] + ([True] if _np is not None else [])


def make_events(n_events=3000, n_clients=40, n_servers=120, seed=3):
    """Interleaved DNS/flow stream with enough key reuse to get hits."""
    rng = random.Random(seed)
    clients = [0x0A000100 + i for i in range(n_clients)]
    servers = [0x55000000 + i * 7 for i in range(n_servers)]
    events = []
    t = 0.0
    for i in range(n_events):
        t += rng.random()
        client = rng.choice(clients)
        if rng.random() < 0.45:
            answers = rng.sample(servers, rng.randint(1, 4))
            if rng.random() < 0.03:
                answers = []          # empty responses stop at the sniffer
            events.append(
                DnsObservation(
                    timestamp=t,
                    client_ip=client,
                    fqdn=f"host{i % 97}.svc{i % 13}.example.com",
                    answers=answers,
                )
            )
        else:
            events.append(
                FlowRecord(
                    fid=FiveTuple(
                        client, rng.choice(servers),
                        rng.randrange(1024, 65535), 443,
                        TransportProto.TCP,
                    ),
                    start=t,
                    end=t + 1.0,
                    protocol=rng.choice(
                        [Protocol.HTTP, Protocol.TLS, Protocol.P2P]
                    ),
                )
            )
    return events


def run_single(events, clist_size=4096, warmup=300.0):
    pipeline = SnifferPipeline(clist_size=clist_size, warmup=warmup)
    pipeline.process_events(events)
    return pipeline


def assert_report_matches(report, single):
    assert report.tag_stats.hits == single.tagger.stats.hits
    assert report.tag_stats.misses == single.tagger.stats.misses
    assert (
        report.tag_stats.warmup_skipped
        == single.tagger.stats.warmup_skipped
    )
    ours = report.resolver_stats
    theirs = single.resolver.stats
    assert ours.responses == theirs.responses
    assert ours.answers == theirs.answers
    assert ours.lookups == theirs.lookups
    assert ours.hits == theirs.hits
    assert ours.replacements == theirs.replacements
    assert (
        report.empty_answers
        == single.dns_sniffer.stats["empty_answers"]
    )


class TestDifferential:
    @pytest.mark.parametrize("use_numpy", CONSUME_PATHS)
    @pytest.mark.parametrize("processes", [2, 4])
    def test_merged_stats_equal_single_process(self, processes, use_numpy):
        events = make_events()
        single = run_single(events)
        fanout = FanoutPipeline(
            processes=processes, clist_size=4096, batch_events=256,
            use_numpy=use_numpy,
        )
        report = fanout.run_events(events)
        assert report.events == len(events)
        assert report.processes == processes
        assert sum(report.worker_events) == len(events)
        assert_report_matches(report, single)

    def test_event_runs_path(self):
        events = make_events(n_events=1200, seed=9)
        single = run_single(events)
        runs = []
        for event in events:
            is_dns = isinstance(event, DnsObservation)
            if runs and runs[-1][0] == is_dns:
                runs[-1][1].append(event)
            else:
                runs.append((is_dns, [event]))
        report = FanoutPipeline(
            processes=2, clist_size=4096, batch_events=128
        ).run_event_runs(runs)
        assert_report_matches(report, single)

    def test_label_histogram(self):
        events = make_events(n_events=1500, seed=5)
        single = run_single(events, warmup=0.0)
        fanout = FanoutPipeline(
            processes=2, clist_size=4096, warmup=0.0,
            batch_events=200, collect_labels=True,
        )
        report = fanout.run_events(events)
        expected = {}
        for flow in single.tagged_flows:
            if flow.fqdn is not None:
                expected[flow.fqdn] = expected.get(flow.fqdn, 0) + 1
        assert dict(report.label_counts) == expected

    def test_report_helpers(self):
        events = make_events(n_events=1500, seed=7)
        single = run_single(events, warmup=0.0)
        report = FanoutPipeline(
            processes=2, clist_size=4096, warmup=0.0, batch_events=500
        ).run_events(events)
        assert report.hit_ratio_by_protocol() == (
            single.hit_ratio_by_protocol()
        )
        assert report.hit_counts_by_protocol() == (
            single.hit_counts_by_protocol()
        )
        assert report.tagged_flows == single.resolver.stats.hits


class TestStreaming:
    def test_incremental_feed_and_snapshots(self):
        events = make_events(n_events=800, seed=11)
        single = run_single(events)
        with FanoutPipeline(
            processes=2, clist_size=4096, batch_events=16, max_pending=1
        ) as fanout:
            half = len(events) // 2
            for event in events[:half]:
                fanout.feed(event)
            # A mid-stream snapshot sees exactly the events fed so far.
            partial = fanout.collect()
            assert partial.events == half
            for event in events[half:]:
                fanout.feed(event)
            report = fanout.collect()
            assert_report_matches(report, single)

    def test_reset_gives_fresh_state(self):
        events = make_events(n_events=600, seed=13)
        single = run_single(events)
        with FanoutPipeline(
            processes=2, clist_size=4096, batch_events=64
        ) as fanout:
            fanout.feed_events(events)
            first = fanout.collect()
            fanout.reset()
            assert fanout.collect().events == 0
            fanout.feed_events(events)
            second = fanout.collect()
        assert first.events == second.events == len(events)
        assert_report_matches(second, single)

    def test_pre_encoded_ingest(self):
        events = make_events(n_events=900, seed=17)
        single = run_single(events)
        payloads = FanoutPipeline.encode_shards(events, 2, batch_events=128)
        trace_start = next(
            event.start for event in events
            if isinstance(event, FlowRecord)
        )
        with FanoutPipeline(
            processes=2, clist_size=4096, batch_events=128
        ) as fanout:
            fanout.set_trace_start(trace_start)
            for shard, batches in enumerate(payloads):
                for payload in batches:
                    fanout.send_encoded(shard, payload)
            report = fanout.collect()
        assert_report_matches(report, single)

    def test_shard_routing_matches_sharded_resolver(self):
        sharded = ShardedResolver(shards=4, clist_size=64)
        for client_ip in [0, 1, 3, 255, 256, 0x0A000105, 0xFFFFFFFF]:
            assert shard_of(client_ip, 4) == sharded._shard_index(client_ip)


class TestLifecycle:
    def test_close_is_idempotent(self):
        fanout = FanoutPipeline(processes=2, clist_size=64)
        fanout.start()
        assert fanout.started
        fanout.close()
        assert not fanout.started
        fanout.close()

    def test_feed_requires_start(self):
        fanout = FanoutPipeline(processes=2, clist_size=64)
        with pytest.raises(FanoutError):
            fanout.feed_dns(1, "x.com", [2])

    def test_run_events_owns_lifecycle(self):
        fanout = FanoutPipeline(processes=2, clist_size=64)
        fanout.start()
        try:
            with pytest.raises(FanoutError):
                fanout.run_events([])
        finally:
            fanout.close()

    def test_dead_worker_is_reported(self):
        events = make_events(n_events=50, seed=19)
        fanout = FanoutPipeline(
            processes=2, clist_size=64, batch_events=4
        )
        fanout.start()
        try:
            fanout._procs[0].terminate()
            fanout._procs[0].join(timeout=5)
            with pytest.raises(FanoutError, match="died"):
                fanout.feed_events(events)
                fanout.collect()
        finally:
            fanout.close()

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            FanoutPipeline(processes=0)
        with pytest.raises(ValueError):
            FanoutPipeline(batch_events=0)
        with pytest.raises(ValueError):
            FanoutPipeline(max_pending=0)


class TestPipelineIntegration:
    def test_process_events_fanout_mode(self):
        events = make_events(n_events=1000, seed=23)
        single = run_single(events)
        pipeline = SnifferPipeline(
            clist_size=4096, processes=2, batch_events=100
        )
        flows = pipeline.process_events(events)
        pipeline.close()
        assert flows == []  # aggregate mode: no materialised records
        assert pipeline.fanout_report is not None
        assert pipeline.tagger.stats.hits == single.tagger.stats.hits
        assert pipeline.tagger.stats.misses == single.tagger.stats.misses
        assert (
            pipeline.hit_counts_by_protocol()
            == single.hit_counts_by_protocol()
        )

    def test_chunked_calls_match_single_stream(self):
        """Resolver state persists across calls exactly as in-process:
        feeding the stream in chunks labels like feeding it whole."""
        events = make_events(n_events=900, seed=29)
        single = run_single(events)
        pipeline = SnifferPipeline(
            clist_size=4096, processes=2, batch_events=64
        )
        try:
            third = len(events) // 3
            pipeline.process_events(events[:third])
            pipeline.process_events(events[third:2 * third])
            pipeline.process_events(events[2 * third:])
            assert pipeline.tagger.stats.hits == single.tagger.stats.hits
            assert (
                pipeline.tagger.stats.misses == single.tagger.stats.misses
            )
            assert (
                pipeline.tagger.stats.warmup_skipped
                == single.tagger.stats.warmup_skipped
            )
            assert (
                pipeline.dns_sniffer.stats["empty_answers"]
                == single.dns_sniffer.stats["empty_answers"]
            )
            assert pipeline.fanout_report.events == len(events)
        finally:
            pipeline.close()

    def test_close_and_restart_starts_fresh(self):
        events = make_events(n_events=400, seed=31)
        pipeline = SnifferPipeline(
            clist_size=4096, processes=2, batch_events=64
        )
        try:
            pipeline.process_events(events)
            first = pipeline.fanout_report
            pipeline.close()
            pipeline.process_events(events)
            # The restarted pool reports only its own events; absorbed
            # totals keep accumulating across the restart.
            assert pipeline.fanout_report.events == len(events)
            total = sum(
                pipeline.tagger.stats.hits.values()
            ) + sum(pipeline.tagger.stats.misses.values())
            per_run = sum(first.tag_stats.hits.values()) + sum(
                first.tag_stats.misses.values()
            )
            assert total == 2 * per_run
        finally:
            pipeline.close()

    def test_process_packets_fanout_mode(self):
        from repro.net.packet import decode_frame
        from repro.simulation import build_trace

        trace = build_trace("EU1-FTTH", seed=19)
        records = trace.to_packets(max_flows=40)
        packets = [
            decode_frame(record.timestamp, record.data, with_ethernet=True)
            for record in records
        ]
        single = SnifferPipeline(clist_size=4096, warmup=0.0)
        single.process_packets(packets)
        fanned = SnifferPipeline(
            clist_size=4096, warmup=0.0, processes=2, batch_events=64
        )
        fanned.process_packets(packets)
        fanned.close()
        report = fanned.fanout_report
        assert report is not None
        assert report.flows == len(single.tagged_flows)
        assert report.resolver_stats.hits == single.resolver.stats.hits
        assert fanned.tagger.stats.hits == single.tagger.stats.hits
        assert (
            fanned.dns_sniffer.stats["decoded"]
            == single.dns_sniffer.stats["decoded"]
        )

    def test_incompatible_knobs(self):
        from repro.sniffer.policy import PolicyEnforcer

        with pytest.raises(ValueError):
            SnifferPipeline(processes=2, shards=2)
        with pytest.raises(ValueError):
            SnifferPipeline(processes=2, policy=PolicyEnforcer())
        with pytest.raises(ValueError):
            SnifferPipeline(processes=2, monitored_clients={1})
        with pytest.raises(ValueError):
            SnifferPipeline(processes=0)


class TestLookupKey:
    def test_matches_lookup(self):
        resolver = DnsResolver(clist_size=128)
        rng = random.Random(1)
        inserted = []
        for i in range(200):
            client = rng.randrange(1, 50)
            answers = [rng.randrange(1, 1 << 32) for _ in range(2)]
            resolver.insert(client, f"h{i}.example.com", answers)
            inserted.append((client, answers[0]))
        probes = inserted + [(9999, 1), (1, 0xDEADBEEF)]
        for client, server in probes:
            expected = resolver.peek(client, server)
            assert resolver.lookup_key(fuse_key(client, server)) == expected
            assert resolver.lookup(client, server) == expected

    def test_counts_statistics(self):
        resolver = DnsResolver(clist_size=8)
        resolver.insert(1, "a.com", [7])
        before = resolver.stats
        assert resolver.lookup_key(fuse_key(1, 7)) == "a.com"
        assert resolver.lookup_key(fuse_key(1, 8)) is None
        after = resolver.stats
        assert after.lookups == before.lookups + 2
        assert after.hits == before.hits + 1

    def test_sharded_lookup_key(self):
        sharded = ShardedResolver(shards=3, clist_size=300)
        sharded.insert(0x0A000105, "svc.example.com", [42])
        key = fuse_key(0x0A000105, 42)
        assert sharded.lookup_key(key) == "svc.example.com"
        assert sharded.lookup_key(fuse_key(0x0A000105, 43)) is None


class TestCollectFlows:
    """Worker-side tagged-flow batch emission toward the Flow Database."""

    @pytest.mark.parametrize("use_numpy", CONSUME_PATHS)
    def test_drained_batches_match_single_process(self, use_numpy):
        from collections import Counter

        from repro.analytics.database import FlowDatabase

        events = make_events(1500, seed=11)
        single = run_single(events)
        expected = FlowDatabase.from_flows(single.tagged_flows)
        fanout = FanoutPipeline(
            processes=2, clist_size=4096, collect_flows=True,
            use_numpy=use_numpy,
        )
        with fanout:
            fanout.feed_events(events)
            report = fanout.collect()
            batches = fanout.drain_tagged_batches()
            # draining clears the worker buffers
            assert fanout.drain_tagged_batches() == []
        assert_report_matches(report, single)
        database = FlowDatabase.from_batches(batches)
        assert len(database) == len(expected)
        assert database.tagged_count == expected.tagged_count
        assert sorted(database.fqdns()) == sorted(expected.fqdns())
        assert database.count_by_protocol() == expected.count_by_protocol()

        def signature(db):
            return Counter(
                (f.fid.client_ip, f.fid.server_ip, f.start, f.fqdn)
                for f in db
            )

        assert signature(database) == signature(expected)

    def test_pipeline_emit_tagged_batches_fanout(self):
        from repro.analytics.database import FlowDatabase

        events = make_events(800, seed=4)
        single = run_single(events)
        pipeline = SnifferPipeline(
            clist_size=4096, processes=2, collect_flows=True
        )
        try:
            pipeline.process_events(events)
            database = FlowDatabase.from_batches(
                pipeline.emit_tagged_batches()
            )
        finally:
            pipeline.close()
        assert len(database) == len(single.tagged_flows)
        assert database.tagged_count == sum(
            1 for f in single.tagged_flows if f.fqdn
        )

    def test_pipeline_emit_tagged_batches_single_process(self):
        from repro.analytics.database import FlowDatabase

        events = make_events(500, seed=5)
        pipeline = run_single(events)
        payloads = pipeline.emit_tagged_batches(batch_events=128)
        database = FlowDatabase.from_batches(payloads)
        assert list(database) == pipeline.tagged_flows

    def test_emit_requires_collect_flows(self):
        pipeline = SnifferPipeline(processes=2)
        with pytest.raises(ValueError):
            pipeline.emit_tagged_batches()
        pipeline.close()
