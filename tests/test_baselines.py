"""Tests for the three baselines: reverse DNS, cert inspection, DPI."""

import pytest

from repro.baselines.dpi import DEFAULT_SIGNATURES, DpiEngine
from repro.baselines.reverse_dns import (
    MatchCategory,
    classify_match,
    compare_reverse_lookup,
)
from repro.baselines.tls_cert import (
    CertCategory,
    classify_certificate,
    compare_certificate_inspection,
    matches_wildcard,
)
from repro.dns.server import ReverseZone
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.net.ip import ip_from_str


class TestClassifyMatch:
    @pytest.mark.parametrize(
        "sniffer,reverse,expected",
        [
            ("www.example.com", "www.example.com", MatchCategory.SAME_FQDN),
            ("mail.example.com", "mx.example.com", MatchCategory.SAME_SLD),
            ("www.zynga.com", "ec2-54-1.amazonaws.com", MatchCategory.DIFFERENT),
            ("www.example.com", None, MatchCategory.NO_ANSWER),
            ("WWW.Example.COM", "www.example.com.", MatchCategory.SAME_FQDN),
        ],
    )
    def test_cases(self, sniffer, reverse, expected):
        assert classify_match(sniffer, reverse) is expected


class TestCompareReverseLookup:
    def test_aggregation(self):
        zone = ReverseZone()
        a1, a2, a3, a4 = (ip_from_str(f"9.0.0.{i}") for i in range(1, 5))
        zone.set_pointer(a1, "www.example.com")
        zone.set_pointer(a2, "pop.example.com")
        zone.set_pointer(a3, "edge-1.akamaitechnologies.com")
        # a4 has no PTR
        pairs = [
            (a1, "www.example.com"),
            (a2, "www.example.com"),
            (a3, "www.example.com"),
            (a4, "www.example.com"),
        ]
        result = compare_reverse_lookup(pairs, zone)
        assert result.samples == 4
        for category in MatchCategory:
            assert result.fraction(category) == pytest.approx(0.25)
        rows = result.as_rows()
        assert rows[0][0] == "Same FQDN"

    def test_examples_capped(self):
        zone = ReverseZone()
        pairs = [(i, "x.example.com") for i in range(10)]
        result = compare_reverse_lookup(pairs, zone, keep_examples=2)
        assert len(result.examples[MatchCategory.NO_ANSWER]) == 2

    def test_empty(self):
        result = compare_reverse_lookup([], ReverseZone())
        assert result.fraction(MatchCategory.SAME_FQDN) == 0.0


class TestWildcardMatch:
    @pytest.mark.parametrize(
        "pattern,fqdn,expected",
        [
            ("*.google.com", "mail.google.com", True),
            ("*.google.com", "smtp.mail.google.com", False),  # one label only
            ("*.google.com", "google.com", False),
            ("www.google.com", "www.google.com", True),
            ("*.akamai.net", "a248.akamai.net", True),
        ],
    )
    def test_cases(self, pattern, fqdn, expected):
        assert matches_wildcard(pattern, fqdn) is expected


class TestClassifyCertificate:
    @pytest.mark.parametrize(
        "fqdn,cert,expected",
        [
            ("mail.google.com", "mail.google.com", CertCategory.EQUAL_FQDN),
            ("mail.google.com", "*.google.com", CertCategory.GENERIC),
            ("docs.google.com", "www.google.com", CertCategory.GENERIC),
            ("static.zynga.com", "a248.akamai.net", CertCategory.DIFFERENT),
            ("mail.google.com", None, CertCategory.NO_CERT),
            ("deep.sub.google.com", "*.google.com", CertCategory.GENERIC),
            ("mail.google.com", "*.example.org", CertCategory.DIFFERENT),
        ],
    )
    def test_cases(self, fqdn, cert, expected):
        assert classify_certificate(fqdn, cert) is expected


class TestCompareCertInspection:
    def _tls_flow(self, fqdn, cert):
        return FlowRecord(
            fid=FiveTuple(1, 2, 3, 443, TransportProto.TCP),
            start=0.0,
            protocol=Protocol.TLS,
            fqdn=fqdn,
            cert_name=cert,
        )

    def test_aggregation(self):
        flows = [
            self._tls_flow("a.example.com", "a.example.com"),
            self._tls_flow("b.example.com", "*.example.com"),
            self._tls_flow("c.example.com", "cdn.akamai.net"),
            self._tls_flow("d.example.com", None),
        ]
        result = compare_certificate_inspection(flows)
        assert result.samples == 4
        for category in CertCategory:
            assert result.fraction(category) == pytest.approx(0.25)

    def test_non_tls_and_untagged_skipped(self):
        flows = [
            FlowRecord(
                fid=FiveTuple(1, 2, 3, 80, TransportProto.TCP),
                start=0.0,
                protocol=Protocol.HTTP,
                fqdn="a.com",
            ),
            self._tls_flow(None, "whatever.com"),
        ]
        result = compare_certificate_inspection(flows)
        assert result.samples == 0


class TestDpiEngine:
    @pytest.mark.parametrize(
        "payload,proto,specific",
        [
            (b"GET /index.html HTTP/1.1\r\n", Protocol.HTTP, True),
            (b"HTTP/1.1 200 OK\r\n", Protocol.HTTP, True),
            (b"\x16\x03\x01\x02\x00\x01", Protocol.TLS, False),
            (b"220 mail.example.com ESMTP", Protocol.MAIL, True),
            (b"+OK POP3 ready", Protocol.MAIL, True),
            (b"\x13BitTorrent protocol....", Protocol.P2P, True),
            (b"GET /announce?info_hash=abc HTTP/1.1", Protocol.P2P, True),
            (b"<?xml version='1.0'?><stream:stream>", Protocol.CHAT, True),
            (b"RTSP/1.0 200 OK", Protocol.STREAMING, True),
        ],
    )
    def test_signatures(self, payload, proto, specific):
        engine = DpiEngine()
        verdict = engine.inspect_payload(payload)
        assert verdict.protocol is proto
        assert verdict.specific is specific
        assert verdict.identified

    def test_unknown_payload(self):
        engine = DpiEngine()
        verdict = engine.inspect_payload(b"\x00\x01\x02\x03 random garbage")
        assert not verdict.identified
        assert verdict.protocol is Protocol.OTHER

    def test_tls_payload_is_opaque(self):
        """The paper's core point: DPI sees 'TLS' but not the service."""
        engine = DpiEngine()
        verdict = engine.inspect_payload(b"\x16\x03\x03" + b"\xaa" * 100)
        assert verdict.protocol is Protocol.TLS
        assert not verdict.specific  # protocol known, service unknown

    def test_inspect_flow_stamps_protocol(self):
        engine = DpiEngine()
        flow = FlowRecord(
            fid=FiveTuple(1, 2, 3, 80, TransportProto.TCP), start=0.0
        )
        engine.inspect_flow(flow, b"GET / HTTP/1.1\r\n")
        assert flow.protocol is Protocol.HTTP

    def test_identification_ratio(self):
        engine = DpiEngine()
        engine.inspect_payload(b"GET / HTTP/1.1")
        engine.inspect_payload(b"garbage-nothing")
        assert engine.identification_ratio == pytest.approx(0.5)
        assert engine.stats["unknown"] == 1

    def test_tracker_beats_plain_http(self):
        """The announce GET must classify as P2P, not generic HTTP."""
        engine = DpiEngine(DEFAULT_SIGNATURES)
        verdict = engine.inspect_payload(b"GET /announce?info_hash=x HTTP/1.1")
        assert verdict.signature == "bittorrent-tracker"
