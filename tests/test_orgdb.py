"""Tests for the IP→organization database and whois registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ip import IPv4Network, ip_from_str
from repro.orgdb.ipdb import IpOrganizationDb, IpRange
from repro.orgdb.whois import OrgKind, OrgRecord, WhoisRegistry


class TestIpRange:
    def test_contains(self):
        r = IpRange(10, 20, "akamai")
        assert 10 in r and 20 in r and 15 in r
        assert 9 not in r and 21 not in r

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            IpRange(20, 10, "x")

    def test_str(self):
        r = IpRange(ip_from_str("1.0.0.0"), ip_from_str("1.0.0.255"), "ak")
        assert "1.0.0.0-1.0.0.255" in str(r)


class TestIpOrganizationDb:
    def test_lookup_basic(self):
        db = IpOrganizationDb()
        db.add_range(100, 200, "akamai")
        db.add_range(300, 400, "amazon")
        assert db.lookup(150) == "akamai"
        assert db.lookup(300) == "amazon"
        assert db.lookup(250) is None
        assert db.lookup(50) is None
        assert db.lookup(500) is None

    def test_add_network(self):
        db = IpOrganizationDb()
        db.add_network(IPv4Network.parse("2.16.0.0/16"), "akamai")
        assert db.lookup(ip_from_str("2.16.200.1")) == "akamai"
        assert db.lookup(ip_from_str("2.17.0.1")) is None

    def test_add_networks_batch(self):
        db = IpOrganizationDb()
        nets = [IPv4Network.parse("10.0.0.0/24"), IPv4Network.parse("10.0.2.0/24")]
        db.add_networks(nets, "leaseweb")
        assert db.lookup(ip_from_str("10.0.2.9")) == "leaseweb"
        assert len(db) == 2

    def test_overlap_rejected(self):
        db = IpOrganizationDb()
        db.add_range(100, 200, "a")
        for bad in [(150, 250), (50, 100), (200, 300), (120, 130), (50, 300)]:
            with pytest.raises(ValueError):
                db.add_range(bad[0], bad[1], "b")

    def test_adjacent_allowed(self):
        db = IpOrganizationDb()
        db.add_range(100, 200, "a")
        db.add_range(201, 300, "b")
        assert db.lookup(200) == "a"
        assert db.lookup(201) == "b"

    def test_lookup_many(self):
        db = IpOrganizationDb()
        db.add_range(1, 10, "x")
        out = db.lookup_many([5, 50])
        assert out == {5: "x", 50: None}

    def test_organizations_and_ranges_of(self):
        db = IpOrganizationDb()
        db.add_range(1, 10, "x")
        db.add_range(20, 30, "x")
        db.add_range(40, 50, "y")
        assert db.organizations() == {"x", "y"}
        assert len(db.ranges_of("x")) == 2

    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(1, 50)),
            max_size=30,
        )
    )
    def test_property_point_queries_match_linear_scan(self, raw):
        db = IpOrganizationDb()
        accepted = []
        for index, (start, width) in enumerate(raw):
            try:
                db.add_range(start, start + width, f"org{index}")
                accepted.append((start, start + width, f"org{index}"))
            except ValueError:
                pass
        for probe in range(0, 10_100, 97):
            expected = next(
                (org for s, e, org in accepted if s <= probe <= e), None
            )
            assert db.lookup(probe) == expected


class TestWhoisRegistry:
    def _registry(self):
        reg = WhoisRegistry()
        reg.register(
            OrgRecord(
                name="akamai",
                kind=OrgKind.CDN,
                aliases=("akamai technologies", "akamai intl"),
            )
        )
        reg.register(OrgRecord(name="amazon", kind=OrgKind.CLOUD))
        reg.register(OrgRecord(name="zynga", kind=OrgKind.CONTENT_OWNER))
        return reg

    def test_lookup_by_name_and_alias(self):
        reg = self._registry()
        assert reg.lookup("akamai").kind is OrgKind.CDN
        assert reg.lookup("Akamai Technologies").name == "akamai"
        assert reg.lookup("unknown") is None

    def test_is_infrastructure(self):
        reg = self._registry()
        assert reg.is_infrastructure("akamai")
        assert reg.is_infrastructure("amazon")
        assert not reg.is_infrastructure("zynga")
        assert not reg.is_infrastructure("missing")

    def test_duplicate_rejected(self):
        reg = self._registry()
        with pytest.raises(ValueError):
            reg.register(OrgRecord(name="AKAMAI", kind=OrgKind.CDN))

    def test_display_name_defaults(self):
        record = OrgRecord(name="edgecast", kind=OrgKind.CDN)
        assert record.display_name == "edgecast"

    def test_iteration_and_len(self):
        reg = self._registry()
        assert len(reg) == 3
        assert {r.name for r in reg} == {"akamai", "amazon", "zynga"}
