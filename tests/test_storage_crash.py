"""Crash-consistency and graceful-degradation suite for FlowStore.

The durability contract under test (ISSUE 6): for a spill+compact+WAL
workload, a simulated crash at **every** injected write/fsync/rename/
truncate/unlink point, followed by a clean reopen, yields a store
whose full query surface is bit-identical to an uncrashed in-memory
store holding the acknowledged prefix of the submitted flows — no
acknowledged row lost, no phantom row, no partial batch visible.
`tests/faultfs.py` provides the injected I/O layer; the crash model is
documented there.

The degradation half: a corrupt/missing segment quarantines (the
store opens, serves every surviving row exactly, and reports itself
degraded) instead of failing the open; torn WAL records and stale
journal epochs are dropped without touching acknowledged data;
transient OSErrors retry with bounded backoff; directory-fsync
failures are fatal unless the platform genuinely cannot do it.

Both halves run with and without numpy — recovery code that is only
correct on one path would be a silent trap for the other.
"""

from __future__ import annotations

import errno
import os
import shutil
from contextlib import contextmanager, nullcontext

import pytest

import repro.analytics.database as database_module
from faultfs import CrashError, FaultFS, inject
from repro.analytics import storage
from repro.analytics.database import FlowDatabase
from repro.analytics.flowstore_cli import main as flowstore_main
from repro.analytics.storage import (
    FlowStore,
    StorageError,
    TailJournal,
    WAL_NAME,
    _encode_flow_batch,
)
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto


@contextmanager
def _without_numpy():
    saved = database_module._np
    database_module._np = None
    try:
        yield
    finally:
        database_module._np = saved


@pytest.fixture
def no_sleep(monkeypatch):
    """Patch the retry backoff delay out; returns the recorded delays."""
    delays: list[float] = []
    monkeypatch.setattr(storage, "_sleep", delays.append)
    return delays


def _flow(i: int) -> FlowRecord:
    fqdn = (
        None, "www.Example.com", "cdn.example.net", "a.b.tracker.org",
        "www.example.com",
    )[i % 5]
    return FlowRecord(
        fid=FiveTuple(5 + i % 7, 40 + i % 9, 1024 + i,
                      (80, 443)[i % 2], TransportProto.TCP),
        start=float(i * 3 % 89),
        end=float(i * 3 % 89) + 2.0,
        protocol=(Protocol.HTTP, Protocol.TLS)[i % 2],
        bytes_up=10 + i,
        bytes_down=1000 + i,
        packets=4,
        fqdn=fqdn,
        cert_name="cert.example.com" if i % 3 == 0 else None,
        true_fqdn="true.example.com" if i % 5 == 0 else None,
    )


def _assert_equivalent(store, flows) -> None:
    """The recovered store's full query surface vs an uncrashed
    in-memory database holding exactly ``flows``."""
    mem = FlowDatabase.from_flows(flows)
    assert len(store) == len(mem)
    assert list(store) == list(mem)
    assert store.fqdns() == mem.fqdns()
    assert store.slds() == mem.slds()
    assert store.tagged_count == mem.tagged_count
    assert store.count_by_protocol() == mem.count_by_protocol()
    assert store.time_span() == mem.time_span()
    assert store.fqdn_server_counts() == sorted(mem.fqdn_server_counts())
    assert store.query_by_domain("example.com") == (
        mem.query_by_domain("example.com")
    )
    assert store.query_by_port(443) == mem.query_by_port(443)
    assert store.query_in_window(10.0, 60.0) == (
        mem.query_in_window(10.0, 60.0)
    )


# ---------------------------------------------------------------------------
# the exhaustive crash sweep
# ---------------------------------------------------------------------------

#: The spill+compact+WAL workload, as (kind, flow-count) units.  Sized
#: so every storage mechanism fires at least once: single adds, raw
#: batch ingest, chunked add_all (spill_rows=8 makes its 12 flows span
#: two journal chunks), explicit flush, compaction of multiple sealed
#: segments, and a final unsealed tail that only the journal protects.
_SPILL_ROWS = 8
_UNITS = (
    ("ingest", 6),
    ("add", 1),
    ("ingest", 5),       # crosses spill_rows -> first spill
    ("add_all", 12),     # two 8-row journal chunks, spills again
    ("flush", 0),
    ("ingest", 7),
    ("compact", 0),      # seals the 7, then merges every segment
    ("add_all", 5),
    ("add", 1),
    ("close", 0),        # seals the final tail
)
_ALL_FLOWS = [_flow(i) for i in range(sum(n for _kind, n in _UNITS))]


def _unit_flows() -> list[list[FlowRecord]]:
    out = []
    cursor = 0
    for _kind, count in _UNITS:
        out.append(_ALL_FLOWS[cursor:cursor + count])
        cursor += count
    return out


def _allowed_partials(kind: str, count: int) -> tuple[int, ...]:
    """Row counts a crash *inside* one unit may leave visible.

    add/ingest_batch are atomic (all or nothing); add_all applies one
    journal chunk at a time, so any chunk boundary is a legal crash
    state; flush/compact/close add no rows.
    """
    if kind == "add_all":
        boundaries = list(range(0, count, _SPILL_ROWS)) + [count]
        return tuple(sorted(set(boundaries)))
    return (0, count)


def _run_workload(directory, progress: list[int]) -> None:
    """Run the workload; after each acknowledged unit, record the
    cumulative acknowledged row count in ``progress``."""
    units = _unit_flows()
    store = FlowStore(directory, spill_rows=_SPILL_ROWS)
    acked = 0
    for (kind, _count), flows in zip(_UNITS, units):
        if kind == "ingest":
            store.ingest_batch(_encode_flow_batch(flows))
        elif kind == "add":
            store.add(flows[0])
        elif kind == "add_all":
            store.add_all(flows)
        elif kind == "flush":
            store.flush()
        elif kind == "compact":
            store.compact()
        elif kind == "close":
            store.close()
        acked += len(flows)
        progress.append(acked)


def _preserve_on_failure(directory, label: str) -> None:
    """Copy the crashed store (WAL and quarantine included) for the CI
    artifact upload when REPRO_CRASH_ARTIFACTS is set."""
    root = os.environ.get("REPRO_CRASH_ARTIFACTS")
    if not root or not os.path.isdir(str(directory)):
        return
    target = os.path.join(root, label)
    os.makedirs(root, exist_ok=True)
    shutil.copytree(directory, target, dirs_exist_ok=True)


def _verify_crash_state(directory, acked_rows: int, in_flight) -> None:
    """Reopen without faults; assert no acknowledged row was lost and
    no partial unit state is visible."""
    store = FlowStore(directory)
    try:
        health = store.health()
        # A pure crash never corrupts committed data: nothing may be
        # quarantined and every journal record must replay.
        assert health["quarantined_segments"] == []
        assert health["wal"]["skipped_records"] == 0
        kind, count = in_flight if in_flight is not None else ("", 0)
        allowed = {
            acked_rows + partial
            for partial in _allowed_partials(kind, count)
        }
        rows = len(store)
        assert rows in allowed, (
            f"recovered {rows} rows; acknowledged {acked_rows}, "
            f"allowed {sorted(allowed)} (in-flight {kind})"
        )
        _assert_equivalent(store, _ALL_FLOWS[:rows])
    finally:
        store.close()


def _sweep(tmp_path, torn: bool) -> None:
    progress: list[int] = []
    dry = FaultFS(real_fsync=False)
    with inject(dry):
        _run_workload(tmp_path / "dry", progress)
    total = dry.ops
    assert total > 60, "workload exercises too few injection points"
    assert progress[-1] == len(_ALL_FLOWS)
    _verify_crash_state(tmp_path / "dry", len(_ALL_FLOWS), None)

    for point in range(total):
        directory = tmp_path / f"crash-{point}"
        progress = []
        fs = FaultFS(crash_at=point, torn=torn, real_fsync=False)
        crashed = False
        with inject(fs):
            try:
                _run_workload(directory, progress)
            except CrashError:
                crashed = True
        assert crashed, f"op {point} of {total} did not fire"
        acked_units = len(progress)
        acked_rows = progress[-1] if progress else 0
        in_flight = (
            _UNITS[acked_units] if acked_units < len(_UNITS) else None
        )
        try:
            _verify_crash_state(directory, acked_rows, in_flight)
        except BaseException:
            _preserve_on_failure(
                directory, f"crash-{point}-torn{int(torn)}"
            )
            raise
        shutil.rmtree(directory)


class TestCrashSweep:
    """A simulated crash at every single injection point."""

    @pytest.mark.parametrize("torn", (False, True),
                             ids=("clean-cut", "torn-write"))
    def test_every_injection_point(self, tmp_path, torn):
        _sweep(tmp_path, torn)

    @pytest.mark.parametrize("torn", (False, True),
                             ids=("clean-cut", "torn-write"))
    def test_every_injection_point_without_numpy(self, tmp_path, torn):
        with _without_numpy():
            _sweep(tmp_path, torn)


# ---------------------------------------------------------------------------
# directed WAL recovery tests
# ---------------------------------------------------------------------------


class TestTailJournal:
    def _unsealed_store(self, tmp_path, batches=(4, 3, 5)):
        """A store whose rows live only in the journal (no flush)."""
        directory = tmp_path / "store"
        store = FlowStore(directory, spill_rows=10_000)
        cursor = 0
        counts = []
        for count in batches:
            store.ingest_batch(_encode_flow_batch(
                _ALL_FLOWS[cursor:cursor + count]
            ))
            cursor += count
            counts.append(cursor)
        store._wal.close()  # release the fd; the tail stays unsealed
        return directory, counts

    def test_unclosed_store_recovers_every_acknowledged_row(
        self, tmp_path
    ):
        directory, counts = self._unsealed_store(tmp_path)
        store = FlowStore(directory)
        health = store.health()
        assert health["wal"]["recovered_rows"] == counts[-1]
        assert health["wal"]["recovered_batches"] == len(counts)
        assert health["status"] == "ok"
        _assert_equivalent(store, _ALL_FLOWS[:counts[-1]])
        store.close()
        # After a clean close the rows are sealed; nothing replays.
        reopened = FlowStore(directory)
        assert reopened.health()["wal"]["recovered_rows"] == 0
        _assert_equivalent(reopened, _ALL_FLOWS[:counts[-1]])
        reopened.close()

    def test_every_truncation_point_recovers_a_batch_prefix(
        self, tmp_path
    ):
        """Cut the journal at every byte offset: recovery must yield
        exactly the acknowledged batches whose frames survived whole —
        bit-identical to an uncrashed store of that prefix."""
        directory, counts = self._unsealed_store(tmp_path)
        wal_path = directory / WAL_NAME
        whole = wal_path.read_bytes()
        header = storage._WAL_HEADER.size
        allowed = {header: 0}
        # Reconstruct each frame's end offset -> cumulative row count.
        pos = header
        for rows in counts:
            length = storage._WAL_FRAME.unpack_from(whole, pos)[0]
            pos += storage._WAL_FRAME.size + length
            allowed[pos] = rows
        assert pos == len(whole)
        boundaries = sorted(allowed)
        for cut in range(header, len(whole)):
            wal_path.write_bytes(whole[:cut])
            store = FlowStore(directory)
            # The rows of every frame wholly inside the cut survive.
            expected = allowed[
                max(b for b in boundaries if b <= cut)
            ]
            assert len(store) == expected, f"cut at byte {cut}"
            torn = store.health()["wal"]["torn_bytes_dropped"]
            assert torn == (0 if cut in allowed else
                            cut - max(b for b in boundaries if b <= cut))
            store._wal.close()
        # Differential check on one mid-frame cut (cheap spot check of
        # content, not just counts).
        wal_path.write_bytes(whole[:boundaries[2] + 3])
        store = FlowStore(directory)
        _assert_equivalent(store, _ALL_FLOWS[:allowed[boundaries[2]]])
        store._wal.close()

    def test_journaling_resumes_after_torn_truncation(self, tmp_path):
        directory, counts = self._unsealed_store(tmp_path)
        wal_path = directory / WAL_NAME
        wal_path.write_bytes(wal_path.read_bytes()[:-3])
        store = FlowStore(directory)
        assert len(store) == counts[-2]
        store.add(_flow(500))
        store._wal.close()
        reopened = FlowStore(directory)
        assert len(reopened) == counts[-2] + 1
        reopened.close()

    def test_stale_epoch_journal_is_discarded_not_double_counted(
        self, tmp_path, monkeypatch
    ):
        """Crash between the manifest commit and the journal reset of a
        seal: the journal's rows already live in the committed segment
        and must not replay on top of it."""
        directory = tmp_path / "store"
        store = FlowStore(directory, spill_rows=10_000)
        store.ingest_batch(_encode_flow_batch(_ALL_FLOWS[:9]))
        monkeypatch.setattr(
            TailJournal, "reset",
            lambda self, epoch: (_ for _ in ()).throw(
                CrashError("crash before journal reset")
            ),
        )
        with pytest.raises(CrashError):
            store.flush()
        monkeypatch.undo()
        store._wal.close()
        # The segment is committed AND the full journal survived at the
        # old epoch — recovery must pick exactly one copy.
        reopened = FlowStore(directory)
        assert len(reopened) == 9
        assert reopened.health()["wal"]["stale_dropped"] is True
        assert not (directory / WAL_NAME).exists()
        _assert_equivalent(reopened, _ALL_FLOWS[:9])
        reopened.close()

    def test_wal_disabled_still_replays_an_inherited_journal(
        self, tmp_path
    ):
        directory, counts = self._unsealed_store(tmp_path)
        store = FlowStore(directory, wal=False)
        assert len(store) == counts[-1]
        # The journal survives until its rows are sealed...
        assert (directory / WAL_NAME).exists()
        store.flush()
        # ...and only then is it dropped (journal-less from here on).
        assert not (directory / WAL_NAME).exists()
        store.close()
        reopened = FlowStore(directory)
        _assert_equivalent(reopened, _ALL_FLOWS[:counts[-1]])
        assert reopened.health()["wal"]["recovered_rows"] == 0
        reopened.close()

    def test_unplayable_journal_record_is_skipped_and_reported(
        self, tmp_path, capsys
    ):
        directory, counts = self._unsealed_store(tmp_path, batches=(4,))
        journal = TailJournal(directory / WAL_NAME, epoch=0)
        journal.append(b"CRC-valid frame, not an eventcodec batch")
        journal.append(_encode_flow_batch(_ALL_FLOWS[4:6]))
        journal.close()
        store = FlowStore(directory)
        health = store.health()
        # The garbage record never acknowledged (its ingest would have
        # raised); the records around it replay fine.
        assert len(store) == 6
        assert health["wal"]["skipped_records"] == 1
        assert health["status"] == "degraded"
        store._wal.close()
        assert flowstore_main(["verify", str(directory)]) == 1
        assert "degraded" in capsys.readouterr().err

    def test_garbage_journal_header_is_dropped(self, tmp_path):
        directory = tmp_path / "store"
        directory.mkdir()
        (directory / WAL_NAME).write_bytes(b"not a journal at all")
        store = FlowStore(directory)
        assert len(store) == 0
        assert store.health()["wal"]["torn_bytes_dropped"] == 20
        assert not (directory / WAL_NAME).exists()
        store.close()


# ---------------------------------------------------------------------------
# graceful degradation: quarantine
# ---------------------------------------------------------------------------


class TestQuarantine:
    def _sealed_store(self, tmp_path):
        directory = tmp_path / "store"
        store = FlowStore(directory, spill_rows=8)
        store.add_all(_ALL_FLOWS[:24])
        store.close()
        segments = sorted(directory.glob("seg-*.fseg"))
        assert len(segments) == 3
        return directory, segments

    def _surviving_flows(self):
        # Segments hold rows 0-7, 8-15, 16-23; segment 2 is the victim.
        return _ALL_FLOWS[:8] + _ALL_FLOWS[16:24]

    @pytest.mark.parametrize("use_numpy", (True, False),
                             ids=("numpy", "pure-python"))
    def test_corrupt_segment_quarantined_not_fatal(
        self, tmp_path, use_numpy
    ):
        context = nullcontext() if use_numpy else _without_numpy()
        with context:
            directory, segments = self._sealed_store(tmp_path)
            victim = segments[1]
            raw = bytearray(victim.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            victim.write_bytes(bytes(raw))
            store = FlowStore(directory)
            health = store.health()
            assert health["status"] == "degraded"
            assert [q["name"] for q in health["quarantined_segments"]] \
                == [victim.name]
            assert "CRC" in health["quarantined_segments"][0]["reason"]
            # Moved aside, bytes preserved for post-mortem.
            assert not victim.exists()
            assert (directory / "quarantine" / victim.name).exists()
            _assert_equivalent(store, self._surviving_flows())
            store.close()

    def test_missing_segment_quarantined(self, tmp_path):
        directory, segments = self._sealed_store(tmp_path)
        segments[1].unlink()
        store = FlowStore(directory)
        health = store.health()
        assert health["status"] == "degraded"
        assert health["quarantined_segments"][0]["name"] == (
            segments[1].name
        )
        _assert_equivalent(store, self._surviving_flows())
        store.close()

    def test_quarantine_is_recorded_and_reopen_is_stable(self, tmp_path):
        import json

        directory, segments = self._sealed_store(tmp_path)
        segments[1].write_bytes(b"FSG1 but not really")
        FlowStore(directory).close()
        manifest = json.loads(
            (directory / "MANIFEST.json").read_text()
        )
        assert [q["name"] for q in manifest["quarantined"]] == (
            [segments[1].name]
        )
        assert segments[1].name not in [
            entry["name"] for entry in manifest["segments"]
        ]
        # Second open: already quarantined, still degraded, no
        # duplicate entries, identical answers.
        store = FlowStore(directory)
        health = store.health()
        assert len(health["quarantined_segments"]) == 1
        _assert_equivalent(store, self._surviving_flows())
        # Ingest into a degraded store keeps working.
        store.add(_flow(900))
        store.close()
        reopened = FlowStore(directory)
        assert len(reopened) == len(self._surviving_flows()) + 1
        assert len(
            reopened.health()["quarantined_segments"]
        ) == 1
        reopened.close()

    def test_strict_restores_hard_fail(self, tmp_path):
        directory, segments = self._sealed_store(tmp_path)
        segments[0].write_bytes(segments[0].read_bytes()[:32])
        with pytest.raises(StorageError):
            FlowStore(directory, strict=True)
        # The failed strict open must not have moved the file.
        assert segments[0].exists()

    def test_verify_cli_exits_nonzero_and_stats_reports(
        self, tmp_path, capsys
    ):
        directory, segments = self._sealed_store(tmp_path)
        segments[2].write_bytes(segments[2].read_bytes()[:40])
        assert flowstore_main(["verify", str(directory)]) == 1
        captured = capsys.readouterr()
        assert "degraded" in captured.err
        assert segments[2].name in captured.out
        import json

        assert flowstore_main(["stats", str(directory)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["status"] == "degraded"
        assert payload["health"]["quarantined_segments"][0]["name"] == (
            segments[2].name
        )


# ---------------------------------------------------------------------------
# tmp sweep, retry/backoff, directory-fsync semantics
# ---------------------------------------------------------------------------


class TestHygieneAndRetry:
    def test_orphaned_tmp_files_swept_at_open(self, tmp_path):
        directory = tmp_path / "store"
        store = FlowStore(directory, spill_rows=4)
        store.add_all(_ALL_FLOWS[:6])
        store.close()
        (directory / "seg-00000099.fseg.tmp").write_bytes(b"torn spill")
        (directory / "MANIFEST.json.tmp").write_bytes(b"torn manifest")
        reopened = FlowStore(directory)
        assert reopened.health()["tmp_files_swept"] == 2
        assert not list(directory.glob("*.tmp"))
        assert len(reopened) == 6
        reopened.close()

    def test_transient_eintr_retries_then_succeeds(
        self, tmp_path, no_sleep
    ):
        fs = FaultFS(flaky={"fsync": [2, errno.EINTR]})
        with inject(fs):
            store = FlowStore(tmp_path / "store", spill_rows=100)
            store.add(_flow(0))
        assert len(no_sleep) == 2      # two backoffs, then success
        store._wal.close()
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened) == 1
        reopened.close()

    def test_enospc_escalates_on_first_attempt(self, tmp_path, no_sleep):
        """A full volume is not transient: the write must fail once —
        no 4-attempt/70 ms backoff ladder in front of the governor —
        and every later recovery probe must fail just as fast."""
        fs = FaultFS(persistent={"write": errno.ENOSPC})
        with inject(fs):
            store = FlowStore(tmp_path / "store", spill_rows=100)
            before = fs.counts["write"]
            with pytest.raises(OSError) as excinfo:
                store.add(_flow(0))
            assert excinfo.value.errno == errno.ENOSPC
            assert fs.counts["write"] == before + 1   # one attempt
            with pytest.raises(OSError):
                store.add(_flow(1))    # the half-open probe equivalent
            assert fs.counts["write"] == before + 2   # still one each
        assert no_sleep == []          # zero backoff
        store._wal.close()

    def test_edquot_escalates_on_first_attempt(self, tmp_path, no_sleep):
        fs = FaultFS(persistent={"fsync": errno.EDQUOT})
        with inject(fs):
            store = FlowStore(tmp_path / "store", spill_rows=100)
            before = fs.counts["fsync"]
            with pytest.raises(OSError) as excinfo:
                store.add(_flow(0))
            assert excinfo.value.errno == errno.EDQUOT
            assert fs.counts["fsync"] == before + 1    # one attempt
        assert no_sleep == []
        store._wal.close()

    def test_persistent_enospc_escalates_without_data_loss(
        self, tmp_path, no_sleep
    ):
        directory = tmp_path / "store"
        FlowStore(directory, spill_rows=100).add(_flow(0))
        fs = FaultFS(persistent={"write": errno.ENOSPC})
        with inject(fs):
            store = FlowStore(directory, spill_rows=100)
            with pytest.raises(OSError):
                store.add(_flow(1))
        store._wal.close()
        # The failed row was never acknowledged; the acknowledged one
        # survives untouched.
        reopened = FlowStore(directory)
        assert len(reopened) == 1
        reopened.close()

    def test_non_transient_error_is_not_retried(self, tmp_path, no_sleep):
        fs = FaultFS(persistent={"write": errno.EIO})
        with inject(fs):
            store = FlowStore(tmp_path / "store", spill_rows=100)
            with pytest.raises(OSError):
                store.add(_flow(0))
        assert no_sleep == []          # EIO must escalate immediately
        store._wal.close()

    def test_dir_fsync_enotsup_is_benign(self, tmp_path):
        fs = FaultFS(persistent={"fsync_dir": errno.ENOTSUP})
        with inject(fs):
            store = FlowStore(tmp_path / "store", spill_rows=4)
            store.add_all(_ALL_FLOWS[:6])
            store.close()
        assert fs.counts["fsync_dir"] > 0
        reopened = FlowStore(tmp_path / "store")
        assert len(reopened) == 6
        reopened.close()

    def test_dir_fsync_real_failure_escalates(self, tmp_path, no_sleep):
        fs = FaultFS(persistent={"fsync_dir": errno.EIO})
        with inject(fs):
            store = FlowStore(tmp_path / "store", spill_rows=4)
            with pytest.raises(OSError):
                store.add_all(_ALL_FLOWS[:6])
        store._wal.close()
