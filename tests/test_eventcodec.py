"""Property and unit tests for the binary event batch codec."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.sniffer.eventcodec import (
    BatchEncoder,
    BatchView,
    CodecError,
    batch_counts,
    decode_events,
    encode_events,
    encode_runs,
)

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u64 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
names = st.text(min_size=0, max_size=60)
opt_names = st.none() | names

dns_events = st.builds(
    DnsObservation,
    timestamp=finite,
    client_ip=u32,
    fqdn=names,
    answers=st.lists(u32, min_size=0, max_size=8),
    ttl=u32,
    useless=st.booleans(),
)

flow_events = st.builds(
    FlowRecord,
    fid=st.builds(
        FiveTuple,
        client_ip=u32,
        server_ip=u32,
        src_port=u16,
        dst_port=u16,
        proto=st.sampled_from(TransportProto),
    ),
    start=finite,
    end=finite,
    protocol=st.sampled_from(Protocol),
    bytes_up=u64,
    bytes_down=u64,
    packets=u32,
    fqdn=opt_names,
    cert_name=opt_names,
    true_fqdn=opt_names,
)

events = st.one_of(dns_events, flow_events)


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(events, min_size=0, max_size=40))
    def test_encode_decode_identity(self, stream):
        assert decode_events(encode_events(stream)) == stream

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.lists(dns_events, min_size=1, max_size=5).map(
                    lambda block: (True, block)
                ),
                st.lists(flow_events, min_size=1, max_size=5).map(
                    lambda block: (False, block)
                ),
            ),
            min_size=0,
            max_size=8,
        )
    )
    def test_encode_runs_matches_event_stream(self, runs):
        """Run-based encoding is byte-identical to the flat stream."""
        flattened = [event for _is_dns, block in runs for event in block]
        assert encode_runs(runs) == encode_events(flattened)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(events, min_size=0, max_size=30))
    def test_counts(self, stream):
        buf = encode_events(stream)
        n_events, n_dns, n_flows = batch_counts(buf)
        assert n_events == len(stream)
        assert n_dns == sum(
            1 for event in stream if isinstance(event, DnsObservation)
        )
        assert n_dns + n_flows == n_events

    def test_empty_batch(self):
        buf = encode_events([])
        assert decode_events(buf) == []
        assert batch_counts(buf) == (0, 0, 0)

    def test_empty_answers_preserved(self):
        observation = DnsObservation(
            timestamp=1.0, client_ip=7, fqdn="a.example.com", answers=[]
        )
        (out,) = decode_events(encode_events([observation]))
        assert out == observation

    def test_encoder_is_reusable(self):
        encoder = BatchEncoder()
        observation = DnsObservation(
            timestamp=0.5, client_ip=1, fqdn="x.com", answers=[9]
        )
        encoder.add(observation)
        first = encoder.take()
        assert len(encoder) == 0
        encoder.add(observation)
        assert encoder.take() == first


class TestValidation:
    def test_too_many_answers(self):
        encoder = BatchEncoder()
        with pytest.raises(CodecError):
            encoder.add_dns_fields(1, "x.com", list(range(256)))

    def test_answer_out_of_range(self):
        encoder = BatchEncoder()
        with pytest.raises(CodecError):
            encoder.add_dns_fields(1, "x.com", [1 << 32])

    def test_oversized_name(self):
        encoder = BatchEncoder()
        with pytest.raises(CodecError):
            encoder.add_dns_fields(1, "x" * 70_000, [1])

    def test_flow_field_out_of_range(self):
        flow = FlowRecord(
            fid=FiveTuple(1, 2, 70_000, 80, TransportProto.TCP),
            start=0.0,
        )
        encoder = BatchEncoder()
        with pytest.raises(CodecError):
            encoder.add_flow(flow)
        # The rejected flow must not leave a half-written record behind.
        assert len(encoder) == 0
        assert encoder.take() == encode_events([])

    def test_unknown_event_type(self):
        with pytest.raises(CodecError):
            BatchEncoder().add(object())


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(CodecError):
            BatchView(b"EC")

    def test_bad_magic(self):
        buf = bytearray(encode_events([]))
        buf[0:2] = b"ZZ"
        with pytest.raises(CodecError):
            BatchView(bytes(buf))

    def test_bad_version(self):
        buf = bytearray(encode_events([]))
        buf[2] = 99
        with pytest.raises(CodecError):
            BatchView(bytes(buf))

    def test_truncated_body(self):
        observation = DnsObservation(
            timestamp=1.0, client_ip=7, fqdn="a.example.com", answers=[1, 2]
        )
        buf = encode_events([observation])
        with pytest.raises(CodecError):
            decode_events(buf[: len(buf) - 3])

    def test_block_length_past_end(self):
        buf = bytearray(encode_events([]))
        # First block length field sits right after the header.
        struct.pack_into("<I", buf, 15, 1 << 20)
        with pytest.raises(CodecError):
            BatchView(bytes(buf))

    def test_bad_interleave_flag(self):
        flow = FlowRecord(
            fid=FiveTuple(1, 2, 3, 4, TransportProto.TCP), start=0.0
        )
        buf = bytearray(encode_events([flow]))
        # Flip the single flag byte (first byte of the flags block).
        buf[19] = 7
        with pytest.raises(CodecError):
            decode_events(bytes(buf))
