"""Tests for the synthetic internet: address plan, zones, resolution."""

import pytest

from repro.dns.message import DnsMessage
from repro.orgdb.whois import OrgKind
from repro.simulation.internet import build_internet, expand_pattern


@pytest.fixture(scope="module")
def eu():
    return build_internet("EU", seed=3)


@pytest.fixture(scope="module")
def us():
    return build_internet("US", seed=3)


class TestExpandPattern:
    def test_plain(self):
        assert expand_pattern("www", (), (1, 3)) == ["www"]

    def test_n_placeholder(self):
        assert expand_pattern("media{n}", (), (1, 3)) == [
            "media1", "media2", "media3",
        ]

    def test_name_placeholder(self):
        assert expand_pattern("photos-{name}", ["a", "b"], (1, 2)) == [
            "photos-a", "photos-b",
        ]

    def test_double_n(self):
        out = expand_pattern("v{n}.ls{n}", (), (1, 2))
        assert "v1.ls2" in out and len(out) == 4

    def test_cap(self):
        out = expand_pattern("x{n}.y{n}", (), (1, 30))
        assert len(out) <= 400


class TestAddressPlan:
    def test_cdn_addresses_resolve_to_cdn(self, eu):
        entry = eu.entry_for("static.fbcdn.net")
        assert entry is not None
        for pool in entry.pools:
            assert pool.operator == "akamai"
            for server in pool.servers:
                assert eu.ipdb.lookup(server) == "akamai"

    def test_self_addresses_resolve_to_org(self, eu):
        entry = eu.entry_for("www.linkedin.com")
        server = entry.pools[0].servers[0]
        assert eu.ipdb.lookup(server) == "linkedin"

    def test_geographies_use_disjoint_addresses(self, eu, us):
        eu_servers = {
            s for e in eu.entries for p in e.pools for s in p.servers
        }
        us_servers = {
            s for e in us.entries for p in e.pools for s in p.servers
        }
        assert not eu_servers & us_servers

    def test_cdn_pool_shared_across_orgs(self, eu):
        """The fan-in: one akamai edge serves several organizations."""
        akamai_users = {}
        for entry in eu.entries:
            for pool in entry.pools:
                if pool.operator != "akamai":
                    continue
                for server in pool.servers:
                    akamai_users.setdefault(server, set()).add(
                        entry.organization.domain
                    )
        assert any(len(orgs) > 1 for orgs in akamai_users.values())

    def test_whois_kinds(self, eu):
        assert eu.whois.lookup("akamai").kind is OrgKind.CDN
        assert eu.whois.lookup("amazon").kind is OrgKind.CLOUD
        assert eu.whois.lookup("zynga").kind is OrgKind.CONTENT_OWNER


class TestResolution:
    def test_known_fqdn_resolves(self, eu):
        answers, ttl = eu.resolve("www.google.com", now=100.0)
        assert answers
        assert ttl > 0
        for address in answers:
            assert eu.ipdb.lookup(address) == "google"

    def test_unknown_fqdn_empty(self, eu):
        assert eu.resolve("nope.invalid", now=0.0) == ([], 0)

    def test_deterministic_within_bucket(self, eu):
        a1, _ = eu.resolve("www.facebook.com", now=100.0)
        a2, _ = eu.resolve("www.facebook.com", now=101.0)
        assert a1 == a2

    def test_rotation_over_time(self, eu):
        """CDN names change answers across TTL windows (load balancing)."""
        seen = set()
        for t in range(0, 36000, 600):
            answers, _ = eu.resolve("photos-a.fbcdn.net", now=float(t))
            seen.update(answers)
        single, _ = eu.resolve("photos-a.fbcdn.net", now=0.0)
        assert len(seen) > len(single)

    def test_diurnal_pool_scaling(self, eu):
        """More distinct fbcdn servers at peak than at dawn (Fig. 4)."""
        def distinct_servers(hour):
            seen = set()
            for minute in range(0, 60, 2):
                for name in "abcdefgh":
                    answers, _ = eu.resolve(
                        f"photos-{name}.fbcdn.net",
                        now=hour * 3600.0 + minute * 60,
                    )
                    seen.update(answers)
            return len(seen)

        dawn = distinct_servers(3)    # 04:00 local (EU = GMT+1)
        peak = distinct_servers(20)   # 21:00 local
        assert peak > dawn

    def test_zone_answers_match_internet(self, eu):
        response = eu.dns.handle_query(
            DnsMessage.query(1, "www.google.com"), now=50.0
        )
        direct, _ = eu.resolve("www.google.com", now=50.0)
        assert response.a_addresses() == direct

    def test_answer_list_size_bounded(self, eu):
        for entry in eu.entries[:20]:
            answers, _ = eu.resolve(entry.fqdns[0], now=0.0)
            assert len(answers) <= entry.service.answer_list_size


class TestReverseDns:
    def test_cdn_ptr_is_infra_name(self, eu):
        entry = eu.entry_for("static.fbcdn.net")
        names = []
        for pool in entry.pools:
            for server in pool.servers:
                ptr = eu.reverse.lookup(server)
                if ptr:
                    names.append(ptr)
        assert names, "akamai should have decent PTR coverage"
        assert all("akamaitechnologies.com" in n for n in names)

    def test_some_addresses_lack_ptr(self, eu):
        total, missing = 0, 0
        for entry in eu.entries:
            for pool in entry.pools:
                for server in pool.servers:
                    total += 1
                    if eu.reverse.lookup(server) is None:
                        missing += 1
        assert 0.05 < missing / total < 0.6

    def test_self_hosted_ptr_styles_mixed(self, eu):
        """SELF addresses: some exact FQDN, some srvN.domain, some none."""
        exact = infra = 0
        for entry in eu.entries:
            domain = entry.organization.domain
            for pool in entry.pools:
                if pool.operator == "akamai" or pool.operator in eu.cdns:
                    continue
                for server in pool.servers:
                    ptr = eu.reverse.lookup(server)
                    if ptr is None:
                        continue
                    if ptr.startswith("srv"):
                        infra += 1
                    elif ptr.endswith(domain):
                        exact += 1
        assert infra > 0
        assert exact > 0


class TestServiceEntries:
    def test_popularity_filtering(self, eu, us):
        eu_entries = {e.fqdns[0] for e in eu.service_entries()}
        us_entries = {e.fqdns[0] for e in us.service_entries()}
        # andomedia has zero EU popularity (Tab. 5 geography effect).
        assert not any("andomedia" in f for f in eu_entries)
        assert any("andomedia" in f for f in us_entries)

    def test_asset_entries_subset(self, eu):
        assets = eu.service_entries(asset_only=True)
        assert assets
        assert all(
            e.organization.domain in {
                "fbcdn.net", "cloudfront.net", "ytimg.com", "twimg.com",
                "sharethis.com", "invitemedia.com", "rubiconproject.com",
            }
            for e in assets
        )

    def test_entries_cached(self, eu):
        assert eu.service_entries() is eu.service_entries()


class TestCatalogTables:
    def test_tab7_ports_exist_in_us(self, us):
        ports = {
            entry.service.port
            for entry in us.service_entries()
        }
        for port in (1080, 1337, 2710, 5050, 5190, 5222, 5223, 5228,
                     6969, 12043, 18182):
            assert port in ports, f"Tab. 7 port {port} missing"

    def test_tab6_ports_exist_in_eu(self, eu):
        ports = {entry.service.port for entry in eu.service_entries()}
        for port in (25, 110, 143, 554, 587, 995, 1863):
            assert port in ports, f"Tab. 6 port {port} missing"

    def test_zynga_three_hosting_arrangements(self, eu):
        operators = set()
        for entry in eu.entries:
            if entry.organization.domain == "zynga.com":
                for pool in entry.pools:
                    operators.add(pool.operator)
        assert operators == {"amazon", "akamai", "zynga"}

    def test_linkedin_four_arrangements(self, eu):
        operators = set()
        for entry in eu.entries:
            if entry.organization.domain == "linkedin.com":
                for pool in entry.pools:
                    operators.add(pool.operator)
        assert operators == {"akamai", "cdnetworks", "edgecast", "linkedin"}
