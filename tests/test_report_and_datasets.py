"""Tests for the report renderers and the dataset cache."""

import pytest

from repro.experiments.datasets import (
    DEFAULT_SEED,
    STANDARD_TRACES,
    get_delays,
    get_result,
    get_trace,
)
from repro.experiments.report import (
    hours_fmt,
    render_cdf,
    render_series,
    render_table,
)
from repro.experiments.result import ExperimentResult


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["Name", "Value"],
            [["a", 1], ["longer-name", 22]],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "Name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # All data rows share the same width.
        assert len(lines[3]) == len(lines[4])

    def test_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestRenderCdf:
    def test_bar_lengths_monotone(self):
        text = render_cdf(
            [(1, 0.25), (2, 0.5), (10, 1.0)], title="cdf", width=20
        )
        lines = text.splitlines()[1:]
        bars = [line.count("#") for line in lines]
        assert bars == sorted(bars)
        assert bars[-1] == 20
        assert "100.0%" in lines[-1]


class TestRenderSeries:
    def test_downsampling(self):
        series = [(float(i), i % 7) for i in range(500)]
        text = render_series(series, max_rows=20)
        assert len(text.splitlines()) <= 2 + 500 // (500 // 20)

    def test_empty(self):
        assert "(empty)" in render_series([], title="t")

    def test_peak_bar_is_full_width(self):
        text = render_series([(0.0, 1), (1.0, 10)], width=30)
        assert "#" * 30 in text


class TestHoursFmt:
    @pytest.mark.parametrize(
        "seconds,expected",
        [(0, "00:00"), (3600, "01:00"), (600, "00:10"),
         (86400 + 3660, "01:01"), (86399, "23:59")],
    )
    def test_cases(self, seconds, expected):
        assert hours_fmt(seconds) == expected


class TestExperimentResult:
    def test_str_contains_parts(self):
        result = ExperimentResult(
            exp_id="x", title="T", data=None, rendered="BODY",
            notes="NOTE",
        )
        text = str(result)
        assert "== x: T ==" in text
        assert "BODY" in text
        assert "NOTE" in text

    def test_str_without_notes(self):
        result = ExperimentResult(
            exp_id="x", title="T", data=None, rendered="BODY"
        )
        assert "[notes]" not in str(result)


class TestDatasetCache:
    def test_trace_cached_identity(self):
        assert get_trace("EU1-FTTH") is get_trace("EU1-FTTH")
        assert get_trace("EU1-FTTH", 3) is get_trace("EU1-FTTH", 3)

    def test_result_contains_consistent_database(self):
        result = get_result("EU1-FTTH")
        assert len(result.database) == len(result.pipeline.tagged_flows)
        assert result.trace is get_trace("EU1-FTTH", DEFAULT_SEED)

    def test_delays_cached(self):
        assert get_delays("EU1-FTTH") is get_delays("EU1-FTTH")

    def test_standard_traces_constant(self):
        assert len(STANDARD_TRACES) == 5
        assert "EU1-ADSL2-24H" not in STANDARD_TRACES
