"""Tests for the RFC 1035 wire codec: round-trips, compression, errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import DnsHeader, DnsMessage, ResponseCode
from repro.dns.records import (
    MxData,
    ResourceRecord,
    RRType,
    SoaData,
    a_record,
    cname_record,
    ptr_record,
)
from repro.dns.wire import (
    DnsWireError,
    decode_message,
    decode_response_addresses,
    encode_message,
)
from repro.net.ip import ip_from_str


def _roundtrip(message):
    return decode_message(encode_message(message))


class TestQueryRoundtrip:
    def test_simple_query(self):
        query = DnsMessage.query(0x1234, "www.example.com")
        out = _roundtrip(query)
        assert out.header.ident == 0x1234
        assert not out.header.is_response
        assert out.question_name == "www.example.com"
        assert out.questions[0].qtype is RRType.A

    def test_ptr_query(self):
        query = DnsMessage.query(7, "4.3.2.1.in-addr.arpa", qtype=RRType.PTR)
        out = _roundtrip(query)
        assert out.questions[0].qtype is RRType.PTR


class TestResponseRoundtrip:
    def test_a_records(self):
        query = DnsMessage.query(42, "cdn.example.com")
        answers = [
            a_record("cdn.example.com", ip_from_str("93.184.216.34"), ttl=60),
            a_record("cdn.example.com", ip_from_str("93.184.216.35"), ttl=60),
        ]
        response = DnsMessage.response_to(query, answers)
        out = _roundtrip(response)
        assert out.header.is_response
        assert out.header.rcode is ResponseCode.NOERROR
        assert out.a_addresses() == [
            ip_from_str("93.184.216.34"),
            ip_from_str("93.184.216.35"),
        ]
        assert out.min_answer_ttl() == 60

    def test_cname_chain(self):
        query = DnsMessage.query(1, "www.zynga.com")
        answers = [
            cname_record("www.zynga.com", "zynga.edgesuite.net", ttl=300),
            cname_record("zynga.edgesuite.net", "a1955.g.akamai.net", ttl=20),
            a_record("a1955.g.akamai.net", ip_from_str("2.16.0.10"), ttl=20),
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.cname_chain() == [
            "zynga.edgesuite.net",
            "a1955.g.akamai.net",
        ]
        assert out.a_addresses() == [ip_from_str("2.16.0.10")]

    def test_nxdomain(self):
        query = DnsMessage.query(9, "nope.example.com")
        response = DnsMessage.response_to(
            query, [], rcode=ResponseCode.NXDOMAIN
        )
        out = _roundtrip(response)
        assert out.header.rcode is ResponseCode.NXDOMAIN
        assert out.answers == []

    def test_mx_and_soa(self):
        query = DnsMessage.query(5, "example.com", qtype=RRType.MX)
        answers = [
            ResourceRecord(
                "example.com", RRType.MX, 3600, MxData(10, "mail.example.com")
            ),
            ResourceRecord(
                "example.com",
                RRType.SOA,
                3600,
                SoaData("ns1.example.com", "admin.example.com", serial=99),
            ),
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].rdata == MxData(10, "mail.example.com")
        assert out.answers[1].rdata.serial == 99

    def test_txt_record(self):
        query = DnsMessage.query(5, "example.com", qtype=RRType.TXT)
        answers = [
            ResourceRecord("example.com", RRType.TXT, 60, b"v=spf1 -all")
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].rdata == b"v=spf1 -all"

    def test_ptr_record(self):
        query = DnsMessage.query(5, "10.2.0.192.in-addr.arpa", qtype=RRType.PTR)
        answers = [
            ptr_record("10.2.0.192.in-addr.arpa", "server.akamai.net")
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].target == "server.akamai.net"


class TestCompression:
    def test_compression_shrinks_output(self):
        query = DnsMessage.query(1, "www.example.com")
        answers = [
            a_record("www.example.com", i, ttl=60) for i in range(1, 6)
        ]
        wire = encode_message(DnsMessage.response_to(query, answers))
        # With compression each answer name is a 2-byte pointer, so the
        # whole message must be far smaller than 5 copies of the name.
        uncompressed_name = len("www.example.com") + 2
        assert len(wire) < 12 + uncompressed_name + 4 + 5 * (
            uncompressed_name + 14
        )
        out = decode_message(wire)
        assert len(out.answers) == 5
        assert all(rr.name == "www.example.com" for rr in out.answers)

    def test_shared_suffix_compression(self):
        query = DnsMessage.query(1, "a.example.com")
        answers = [
            cname_record("a.example.com", "b.example.com"),
            a_record("b.example.com", 7),
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].target == "b.example.com"
        assert out.answers[1].name == "b.example.com"


class TestWireErrors:
    def test_truncated_header(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\x00\x01")

    def test_truncated_question(self):
        query = encode_message(DnsMessage.query(1, "example.com"))
        with pytest.raises(DnsWireError):
            decode_message(query[:-3])

    def test_pointer_loop(self):
        # Header claiming one question whose name is a self-pointer.
        header = (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        loop = b"\xc0\x0c"  # points at itself (offset 12)
        with pytest.raises(DnsWireError):
            decode_message(header + loop + b"\x00\x01\x00\x01")

    def test_garbage(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\xff" * 40)


class TestPointerValidation:
    """Regression tests for compression-pointer hardening.

    The original check only rejected a pointer that was simultaneously
    first-hop *and* past the buffer; any pointer target at or past the
    end of the message, and any forward pointer, must be rejected
    (RFC 1035 pointers reference a prior occurrence).
    """

    @staticmethod
    def _question_message(name_bytes):
        header = (
            (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        )
        return header + name_bytes + b"\x00\x01\x00\x01"

    def test_pointer_past_end_rejected(self):
        # Pointer target 0x3FF is far beyond the message.
        message = self._question_message(b"\xc3\xff")
        with pytest.raises(DnsWireError):
            decode_message(message)

    def test_pointer_past_end_rejected_after_label(self):
        # A label first, then an out-of-range pointer: the seed check
        # missed this (``labels`` non-empty).
        message = self._question_message(b"\x03abc\xc3\xff")
        with pytest.raises(DnsWireError):
            decode_message(message)

    def test_forward_pointer_rejected(self):
        # Pointer at offset 12 targeting offset 14 (forward).
        message = self._question_message(b"\xc0\x0e\x03abc\x00")
        with pytest.raises(DnsWireError):
            decode_message(message)

    def test_self_pointer_rejected(self):
        message = self._question_message(b"\xc0\x0c")
        with pytest.raises(DnsWireError):
            decode_message(message)

    def test_second_hop_out_of_range_rejected(self):
        # First pointer is valid and backward; the name it reaches ends
        # in a second pointer that is out of range.  The seed check only
        # guarded the first hop.
        header = (
            (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        )
        # offset 12: label "ab", then pointer to offset 12... build:
        # offset 12: 0x02 'a' 'b' 0xc3 0xff  (label then bad pointer)
        # offset 17: 0xc0 0x0c (points back at offset 12)
        message = header + b"\x02ab\xc3\xff" + b"\xc0\x0c" + b"\x00\x01\x00\x01"
        with pytest.raises(DnsWireError):
            decode_message(message)

    def test_backward_compression_still_decodes(self):
        # Sanity: the legitimate encoder output (backward pointers only)
        # still round-trips.
        query = DnsMessage.query(3, "www.example.com")
        answers = [a_record("www.example.com", 9, ttl=5)]
        out = decode_message(encode_message(DnsMessage.response_to(query, answers)))
        assert out.answers[0].name == "www.example.com"


class TestFastPathDecode:
    """The zero-copy fast path must agree with the full decoder on
    everything it accepts, and defer everything else."""

    @staticmethod
    def _response(name="cdn.example.com", addresses=(1, 2), ttl=60, ident=4):
        query = DnsMessage.query(ident, name)
        return encode_message(
            DnsMessage.response_to(
                query, [a_record(name, a, ttl=ttl) for a in addresses]
            )
        )

    def test_matches_full_decoder(self):
        wire = self._response(addresses=(10, 20, 30), ttl=44)
        message = decode_message(wire)
        assert decode_response_addresses(wire) == (
            message.question_name,
            message.a_addresses(),
            message.min_answer_ttl(),
        )

    def test_empty_answers(self):
        wire = self._response(addresses=())
        assert decode_response_addresses(wire) == ("cdn.example.com", [], 0)

    def test_min_ttl_across_answers(self):
        query = DnsMessage.query(1, "x.example.com")
        wire = encode_message(
            DnsMessage.response_to(
                query,
                [
                    a_record("x.example.com", 1, ttl=500),
                    a_record("x.example.com", 2, ttl=7),
                    a_record("x.example.com", 3, ttl=90),
                ],
            )
        )
        assert decode_response_addresses(wire)[2] == 7

    def test_query_defers(self):
        wire = encode_message(DnsMessage.query(5, "a.example.com"))
        assert decode_response_addresses(wire) is None

    def test_cname_defers(self):
        query = DnsMessage.query(1, "www.zynga.com")
        wire = encode_message(
            DnsMessage.response_to(
                query,
                [
                    cname_record("www.zynga.com", "z.edgesuite.net", ttl=30),
                    a_record("z.edgesuite.net", 77, ttl=30),
                ],
            )
        )
        assert decode_response_addresses(wire) is None
        # ...and the general decoder handles what the fast path deferred.
        assert decode_message(wire).a_addresses() == [77]

    def test_truncated_header_raises(self):
        with pytest.raises(DnsWireError):
            decode_response_addresses(b"\x00\x01")

    def test_truncated_body_defers_or_refuses(self):
        wire = self._response()
        for cut in range(12, len(wire)):
            assert decode_response_addresses(wire[:cut]) is None

    @given(
        ident=st.integers(min_value=0, max_value=0xFFFF),
        addresses=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=0,
            max_size=12,
        ),
        ttl=st.integers(min_value=0, max_value=86400),
    )
    def test_arbitrary_a_responses_match(self, ident, addresses, ttl):
        name = "host.fast.example.com"
        wire = self._response(
            name=name, addresses=tuple(addresses), ttl=ttl, ident=ident
        )
        message = decode_message(wire)
        assert decode_response_addresses(wire) == (
            message.question_name,
            message.a_addresses(),
            message.min_answer_ttl(),
        )

    @settings(max_examples=200)
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            result = decode_response_addresses(data)
        except DnsWireError:
            return
        if result is not None:
            fqdn, addresses, ttl = result
            assert isinstance(fqdn, str)
            assert all(isinstance(a, int) for a in addresses)
            assert ttl >= 0


_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12),
    min_size=2,
    max_size=4,
).map(".".join)


class TestPropertyRoundtrip:
    @given(
        ident=st.integers(min_value=0, max_value=0xFFFF),
        name=_names,
        addresses=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=0,
            max_size=10,
        ),
        ttl=st.integers(min_value=0, max_value=86400),
    )
    def test_arbitrary_a_responses(self, ident, name, addresses, ttl):
        query = DnsMessage.query(ident, name)
        answers = [a_record(name, addr, ttl=ttl) for addr in addresses]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.header.ident == ident
        assert out.question_name == name
        assert out.a_addresses() == addresses
        if addresses:
            assert out.min_answer_ttl() == ttl


class TestHeaderFlags:
    @given(
        st.booleans(), st.booleans(), st.booleans(), st.booleans(),
        st.sampled_from(list(ResponseCode)),
    )
    def test_flags_word_roundtrip(self, resp, aa, rd, ra, rcode):
        header = DnsHeader(
            ident=77,
            is_response=resp,
            authoritative=aa,
            recursion_desired=rd,
            recursion_available=ra,
            rcode=rcode,
        )
        out = DnsHeader.from_flags_word(77, header.flags_word())
        assert out == header
