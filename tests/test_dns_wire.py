"""Tests for the RFC 1035 wire codec: round-trips, compression, errors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.message import DnsHeader, DnsMessage, Question, ResponseCode
from repro.dns.records import (
    MxData,
    ResourceRecord,
    RRType,
    SoaData,
    a_record,
    cname_record,
    ptr_record,
)
from repro.dns.wire import DnsWireError, decode_message, encode_message
from repro.net.ip import ip_from_str


def _roundtrip(message):
    return decode_message(encode_message(message))


class TestQueryRoundtrip:
    def test_simple_query(self):
        query = DnsMessage.query(0x1234, "www.example.com")
        out = _roundtrip(query)
        assert out.header.ident == 0x1234
        assert not out.header.is_response
        assert out.question_name == "www.example.com"
        assert out.questions[0].qtype is RRType.A

    def test_ptr_query(self):
        query = DnsMessage.query(7, "4.3.2.1.in-addr.arpa", qtype=RRType.PTR)
        out = _roundtrip(query)
        assert out.questions[0].qtype is RRType.PTR


class TestResponseRoundtrip:
    def test_a_records(self):
        query = DnsMessage.query(42, "cdn.example.com")
        answers = [
            a_record("cdn.example.com", ip_from_str("93.184.216.34"), ttl=60),
            a_record("cdn.example.com", ip_from_str("93.184.216.35"), ttl=60),
        ]
        response = DnsMessage.response_to(query, answers)
        out = _roundtrip(response)
        assert out.header.is_response
        assert out.header.rcode is ResponseCode.NOERROR
        assert out.a_addresses() == [
            ip_from_str("93.184.216.34"),
            ip_from_str("93.184.216.35"),
        ]
        assert out.min_answer_ttl() == 60

    def test_cname_chain(self):
        query = DnsMessage.query(1, "www.zynga.com")
        answers = [
            cname_record("www.zynga.com", "zynga.edgesuite.net", ttl=300),
            cname_record("zynga.edgesuite.net", "a1955.g.akamai.net", ttl=20),
            a_record("a1955.g.akamai.net", ip_from_str("2.16.0.10"), ttl=20),
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.cname_chain() == [
            "zynga.edgesuite.net",
            "a1955.g.akamai.net",
        ]
        assert out.a_addresses() == [ip_from_str("2.16.0.10")]

    def test_nxdomain(self):
        query = DnsMessage.query(9, "nope.example.com")
        response = DnsMessage.response_to(
            query, [], rcode=ResponseCode.NXDOMAIN
        )
        out = _roundtrip(response)
        assert out.header.rcode is ResponseCode.NXDOMAIN
        assert out.answers == []

    def test_mx_and_soa(self):
        query = DnsMessage.query(5, "example.com", qtype=RRType.MX)
        answers = [
            ResourceRecord(
                "example.com", RRType.MX, 3600, MxData(10, "mail.example.com")
            ),
            ResourceRecord(
                "example.com",
                RRType.SOA,
                3600,
                SoaData("ns1.example.com", "admin.example.com", serial=99),
            ),
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].rdata == MxData(10, "mail.example.com")
        assert out.answers[1].rdata.serial == 99

    def test_txt_record(self):
        query = DnsMessage.query(5, "example.com", qtype=RRType.TXT)
        answers = [
            ResourceRecord("example.com", RRType.TXT, 60, b"v=spf1 -all")
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].rdata == b"v=spf1 -all"

    def test_ptr_record(self):
        query = DnsMessage.query(5, "10.2.0.192.in-addr.arpa", qtype=RRType.PTR)
        answers = [
            ptr_record("10.2.0.192.in-addr.arpa", "server.akamai.net")
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].target == "server.akamai.net"


class TestCompression:
    def test_compression_shrinks_output(self):
        query = DnsMessage.query(1, "www.example.com")
        answers = [
            a_record("www.example.com", i, ttl=60) for i in range(1, 6)
        ]
        wire = encode_message(DnsMessage.response_to(query, answers))
        # With compression each answer name is a 2-byte pointer, so the
        # whole message must be far smaller than 5 copies of the name.
        uncompressed_name = len("www.example.com") + 2
        assert len(wire) < 12 + uncompressed_name + 4 + 5 * (
            uncompressed_name + 14
        )
        out = decode_message(wire)
        assert len(out.answers) == 5
        assert all(rr.name == "www.example.com" for rr in out.answers)

    def test_shared_suffix_compression(self):
        query = DnsMessage.query(1, "a.example.com")
        answers = [
            cname_record("a.example.com", "b.example.com"),
            a_record("b.example.com", 7),
        ]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.answers[0].target == "b.example.com"
        assert out.answers[1].name == "b.example.com"


class TestWireErrors:
    def test_truncated_header(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\x00\x01")

    def test_truncated_question(self):
        query = encode_message(DnsMessage.query(1, "example.com"))
        with pytest.raises(DnsWireError):
            decode_message(query[:-3])

    def test_pointer_loop(self):
        # Header claiming one question whose name is a self-pointer.
        header = (1).to_bytes(2, "big") + b"\x00\x00" + b"\x00\x01" + b"\x00" * 6
        loop = b"\xc0\x0c"  # points at itself (offset 12)
        with pytest.raises(DnsWireError):
            decode_message(header + loop + b"\x00\x01\x00\x01")

    def test_garbage(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\xff" * 40)


_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12),
    min_size=2,
    max_size=4,
).map(".".join)


class TestPropertyRoundtrip:
    @given(
        ident=st.integers(min_value=0, max_value=0xFFFF),
        name=_names,
        addresses=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=0,
            max_size=10,
        ),
        ttl=st.integers(min_value=0, max_value=86400),
    )
    def test_arbitrary_a_responses(self, ident, name, addresses, ttl):
        query = DnsMessage.query(ident, name)
        answers = [a_record(name, addr, ttl=ttl) for addr in addresses]
        out = _roundtrip(DnsMessage.response_to(query, answers))
        assert out.header.ident == ident
        assert out.question_name == name
        assert out.a_addresses() == addresses
        if addresses:
            assert out.min_answer_ttl() == ttl


class TestHeaderFlags:
    @given(
        st.booleans(), st.booleans(), st.booleans(), st.booleans(),
        st.sampled_from(list(ResponseCode)),
    )
    def test_flags_word_roundtrip(self, resp, aa, rd, ra, rcode):
        header = DnsHeader(
            ident=77,
            is_response=resp,
            authoritative=aa,
            recursion_desired=rd,
            recursion_available=ra,
            rcode=rcode,
        )
        out = DnsHeader.from_flags_word(77, header.flags_word())
        assert out == header
