"""Integration tests: every experiment runs and reproduces the paper's
qualitative shape.

These are the repository's acceptance tests — they assert the *claims*
the paper makes about each table/figure, not exact numbers (the
substrate is a scaled synthetic internet, not the authors' testbed).
Traces are cached per process, so the suite builds each one once.
"""

import pytest

from repro.experiments.runner import REGISTRY, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run every experiment once and index the results by id."""
    out = {}
    for exp_id, runner in REGISTRY.items():
        if exp_id in ("table8", "fig6", "fig10", "fig11"):
            out[exp_id] = runner(days=6, seed=11)
        else:
            out[exp_id] = runner()
    return out


class TestRunner:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {f"table{i}" for i in range(1, 10)}
        expected |= {f"fig{i}" for i in range(3, 15)}
        expected.add("dimensioning")
        assert set(REGISTRY) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_every_result_renders(self, results):
        for exp_id, result in results.items():
            assert result.exp_id == exp_id
            assert result.rendered.strip()
            assert result.paper_reference
            assert str(result)


class TestTable1:
    def test_flow_count_ordering(self, results):
        rows = {r["trace"]: r for r in results["table1"].data}
        flows = {name: r["tcp_flows"] for name, r in rows.items()}
        # The paper's big three keep their order; the two small traces
        # (US-3G scaled 4M, FTTH 1M) must both be smallest.
        assert flows["EU1-ADSL1"] > flows["EU2-ADSL"] > flows["EU1-ADSL2"]
        assert flows["EU1-ADSL2"] > max(flows["US-3G"], flows["EU1-FTTH"])

    def test_every_trace_has_dns(self, results):
        for row in results["table1"].data:
            assert row["peak_dns_per_min"] > 0
            assert row["dns_responses"] > 0


class TestTable2:
    def test_http_tls_high_p2p_low(self, results):
        data = results["table2"].data
        for trace, per_proto in data.items():
            http, _hits = per_proto["http"]
            tls, _ = per_proto["tls"]
            p2p, _ = per_proto["p2p"]
            assert http > 0.7, trace
            assert tls > 0.6, trace
            assert p2p < 0.15, trace

    def test_us3g_depressed(self, results):
        data = results["table2"].data
        assert data["US-3G"]["http"][0] < data["EU1-ADSL1"]["http"][0] - 0.1
        assert data["US-3G"]["tls"][0] < data["EU2-ADSL"]["tls"][0] - 0.1


class TestTable3:
    def test_reverse_lookup_mostly_useless(self, results):
        data = results["table3"].data
        assert data["Same FQDN"] < 0.25            # paper: 9%
        assert data["Totally different"] + data["No-answer"] > 0.40
        assert abs(sum(data.values()) - 1.0) < 1e-9


class TestTable4:
    def test_certificate_inspection_weak(self, results):
        data = results["table4"].data
        assert data["Certificate equal FQDN"] < 0.3      # paper: 18%
        assert data["No certificate"] > 0.1              # paper: 23%
        assert (
            data["Totally different certificate"]
            + data["No certificate"]
        ) > 0.4                                          # paper: 63%


class TestTable5:
    def test_geography_split(self, results):
        data = results["table5"].data
        us = {domain for domain, _ in data["US"]}
        eu = {domain for domain, _ in data["EU"]}
        assert "cloudfront.net" in us and "cloudfront.net" in eu
        assert "playfish.com" in eu and "playfish.com" not in us
        us_only = {"andomedia.com", "admarvel.com", "mobclix.com"}
        assert us_only & us
        assert not us_only & eu


class TestTable6And7:
    def test_all_ports_tagged_correctly(self, results):
        for exp_id in ("table6", "table7"):
            notes = results[exp_id].notes
            assert "MISS" not in notes, notes

    def test_port25_smtp_first(self, results):
        tags = results["table6"].data[25]
        top_tokens = [token for token, _ in tags[:3]]
        assert any("smtp" in t or t == "mail" for t in top_tokens)

    def test_port1337_reveals_tracker(self, results):
        tags = results["table7"].data[1337]
        tokens = {token for token, _ in tags}
        assert tokens & {"exodus", "genesis"}


class TestTable8:
    def test_trackers_small_but_flow_heavy(self, results):
        data = results["table8"].data
        trackers, general = data["trackers"], data["general"]
        assert trackers["services"] < general["services"]
        assert trackers["flows"] > general["flows"]
        tracker_ratio = trackers["bytes_up"] / max(trackers["bytes_down"], 1)
        general_ratio = general["bytes_up"] / max(general["bytes_down"], 1)
        assert tracker_ratio > 3 * general_ratio


class TestTable9:
    def test_useless_fractions(self, results):
        data = results["table9"].data
        for name, fraction in data.items():
            if name == "US-3G":
                assert 0.15 < fraction < 0.45    # paper: 30%
            else:
                assert 0.35 < fraction < 0.60    # paper: 46-50%
        assert data["US-3G"] < min(
            v for k, v in data.items() if k != "US-3G"
        )


class TestFig3:
    def test_single_mappings_dominate_with_heavy_tails(self, results):
        data = results["fig3"].data
        assert data["single_fqdn"] > 0.6          # paper: 82%
        assert data["single_server"] > 0.55       # paper: 73%
        max_fanout = max(v for v, _ in data["fanout"])
        max_fanin = max(v for v, _ in data["fanin"])
        assert max_fanout >= 10
        assert max_fanin >= 20


class TestFig4:
    def test_cdn_domains_diurnal_blogspot_flat(self, results):
        series = results["fig4"].data
        fbcdn = [v for _, v in series["fbcdn.net"]]
        blogspot = [v for _, v in series["blogspot.com"]]
        assert max(fbcdn) >= 2 * max(min(fbcdn), 1)
        assert max(blogspot) <= 20                # paper: <20 serverIPs


class TestFig5:
    def test_amazon_top_edgecast_small(self, results):
        totals = results["fig5"].data["totals"]
        assert totals["amazon"] == max(totals.values())
        assert totals["edgecast"] <= 20


class TestFig6:
    def test_fqdn_grows_infrastructure_saturates(self, results):
        data = results["fig6"].data
        fqdn_series = data["fqdn"]
        server_series = data["server_ip"]
        # FQDN curve: still adding names in the last quarter.
        quarter = max(len(fqdn_series) // 4, 1)
        fqdn_late_growth = fqdn_series[-1][1] - fqdn_series[-quarter][1]
        assert fqdn_late_growth > 0
        server_late_growth = server_series[-1][1] - server_series[-quarter][1]
        assert server_late_growth <= fqdn_late_growth / 5


class TestFig7And8:
    def test_linkedin_edgecast_dominates_with_one_server(self, results):
        shares = results["fig7"].data
        servers, share = shares["edgecast"]
        assert servers <= 3                       # paper: 1 server
        assert share == max(s for _, s in shares.values())  # paper: 59%

    def test_zynga_amazon_dominates(self, results):
        shares = results["fig8"].data
        amazon_servers, amazon_share = shares["amazon"]
        assert amazon_share > 0.6                 # paper: 86%
        assert amazon_servers == max(s for s, _ in shares.values())


class TestFig9:
    def test_geography_dependence(self, results):
        data = results["fig9"].data
        fb = data["facebook.com"]
        for trace in fb:
            assert fb[trace].get("SELF", 0) > 0.5
        tw = data["twitter.com"]
        assert tw["EU1-ADSL1"].get("akamai", 0) > tw["US-3G"].get("akamai", 0)
        dm = data["dailymotion.com"]
        assert all(dm[t].get("dedibox", 0) > 0.3 for t in dm)
        us_mirrors = {"meta", "ntt", "SELF"}
        assert any(dm["US-3G"].get(m, 0) > 0 for m in us_mirrors)
        assert not any(dm["EU1-ADSL1"].get(m, 0) > 0 for m in ("meta", "ntt"))


class TestFig10And11:
    def test_trackers_prominent_in_cloud(self, results):
        entries = results["fig10"].data
        top_words = [word for word, _, _ in entries[:10]]
        trackerish = sum(
            1 for w in top_words
            if any(t in w for t in ("tracker", "torrent", "announce",
                                    "rlskingbt", "genesis", "bt"))
        )
        assert trackerish >= 5

    def test_tracker_timeline_classes(self, results):
        data = results["fig11"].data
        assert len(data["timelines"]) >= 40       # paper: 45 trackers
        total = len(data["timelines"])
        always = len(data["always_on"])
        assert 0.15 < always / total < 0.55       # paper: ~33%
        assert any(len(g) >= 3 for g in data["synchronized"])


class TestFig12And13:
    def test_first_flow_delay_shape(self, results):
        data = results["fig12"].data
        for name, points in data.items():
            cdf = dict(points)
            if name != "US-3G":
                assert cdf[1.0] > 0.75            # paper: ~90% within 1s
            assert cdf[10.0] < 1.0                # the >10s tail exists
        # FTTH faster than 3G.
        assert dict(data["EU1-FTTH"])[1.0] > dict(data["US-3G"])[1.0]

    def test_one_hour_covers_nearly_all(self, results):
        data = results["fig13"].data
        for name, points in data.items():
            cdf = dict(points)
            assert cdf[3600.0] > 0.9              # paper: ~98%


class TestFig14:
    def test_diurnal_pattern(self, results):
        series = results["fig14"].data
        by_clock = {}
        for t, v in series:
            by_clock.setdefault(int(t // 3600), []).append(v)
        evening = sum(by_clock.get(20, [0])) / max(len(by_clock.get(20, [1])), 1)
        night = sum(by_clock.get(4, [0])) / max(len(by_clock.get(4, [1])), 1)
        assert evening > 2 * night


class TestDimensioning:
    def test_efficiency_monotone_and_saturating(self, results):
        data = results["dimensioning"].data
        efficiencies = data["efficiency_vs_l"]
        sizes = sorted(efficiencies)
        values = [efficiencies[s] for s in sizes]
        assert all(b >= a - 0.02 for a, b in zip(values, values[1:]))
        assert values[-1] > 0.9                   # paper: ~98%
        assert values[0] < values[-1] - 0.1       # small L genuinely hurts

    def test_answer_histogram_multi_share(self, results):
        histogram = results["dimensioning"].data["answer_histogram"]
        total = sum(histogram.values())
        multi = sum(c for size, c in histogram.items() if size > 1)
        assert 0.2 < multi / total < 0.7          # paper: ~40%

    def test_confusion_small(self, results):
        assert results["dimensioning"].data["confusion"] < 0.10
