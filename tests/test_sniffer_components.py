"""Tests for DNS response sniffer, flow sniffer, tagger, and policy."""


from repro.dns.message import DnsMessage
from repro.dns.records import a_record
from repro.dns.wire import encode_message
from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.net.ip import ip_from_str
from repro.net.packet import (
    TCP_SYN,
    build_tcp_packet,
    build_udp_packet,
    decode_frame,
)
from repro.sniffer.dns_sniffer import DnsResponseSniffer
from repro.sniffer.flow_sniffer import FlowSniffer
from repro.sniffer.policy import PolicyAction, PolicyEnforcer, PolicyRule
from repro.sniffer.resolver import DnsResolver
from repro.sniffer.tagger import FlowTagger

CLIENT = ip_from_str("10.1.0.5")
DNS_SERVER = ip_from_str("10.1.0.1")
WEB1 = ip_from_str("93.184.216.34")
WEB2 = ip_from_str("93.184.216.35")


def _dns_response_packet(ts, client, fqdn, addresses, ident=1):
    query = DnsMessage.query(ident, fqdn)
    response = DnsMessage.response_to(
        query, [a_record(fqdn, a, ttl=60) for a in addresses]
    )
    frame = build_udp_packet(
        ts, DNS_SERVER, client, 53, 33333, encode_message(response)
    )
    return decode_frame(ts, frame)


def _flow(client=CLIENT, server=WEB1, dport=80, start=400.0, proto=Protocol.HTTP):
    return FlowRecord(
        fid=FiveTuple(client, server, 40000, dport, TransportProto.TCP),
        start=start,
        protocol=proto,
    )


class TestDnsResponseSniffer:
    def test_decodes_response_and_fills_resolver(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver)
        packet = _dns_response_packet(1.0, CLIENT, "www.example.com", [WEB1, WEB2])
        observation = sniffer.feed_packet(packet)
        assert observation is not None
        assert observation.fqdn == "www.example.com"
        assert resolver.peek(CLIENT, WEB1) == "www.example.com"
        assert resolver.peek(CLIENT, WEB2) == "www.example.com"

    def test_ignores_queries(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver)
        query = DnsMessage.query(5, "www.example.com")
        frame = build_udp_packet(
            0.5, CLIENT, DNS_SERVER, 33333, 53, encode_message(query)
        )
        assert sniffer.feed_packet(decode_frame(0.5, frame)) is None
        assert sniffer.stats["queries_ignored"] == 1

    def test_ignores_non_dns_ports(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver)
        frame = build_udp_packet(0.0, CLIENT, WEB1, 1000, 2000, b"hello")
        assert sniffer.feed_packet(decode_frame(0.0, frame)) is None
        assert sniffer.stats["packets"] == 0

    def test_decode_error_counted(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver)
        frame = build_udp_packet(0.0, DNS_SERVER, CLIENT, 53, 999, b"\xff\xfe")
        assert sniffer.feed_packet(decode_frame(0.0, frame)) is None
        assert sniffer.stats["decode_errors"] == 1

    def test_monitored_clients_filter(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver, monitored_clients={CLIENT})
        other = ip_from_str("10.9.9.9")
        packet = _dns_response_packet(1.0, other, "x.com", [WEB1])
        assert sniffer.feed_packet(packet) is None
        assert sniffer.stats["foreign_client"] == 1

    def test_observation_fast_path(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver)
        obs = DnsObservation(2.0, CLIENT, "fast.example.com", [WEB1])
        assert sniffer.feed_observation(obs) is obs
        assert resolver.peek(CLIENT, WEB1) == "fast.example.com"

    def test_observation_empty_answers(self):
        resolver = DnsResolver(clist_size=16)
        sniffer = DnsResponseSniffer(resolver)
        obs = DnsObservation(2.0, CLIENT, "nx.example.com", [])
        assert sniffer.feed_observation(obs) is None
        assert sniffer.stats["empty_answers"] == 1


class TestFlowSniffer:
    def test_tcp_flow_completes(self):
        sniffer = FlowSniffer()
        syn = decode_frame(
            0.0, build_tcp_packet(0.0, CLIENT, WEB1, 40000, 80, TCP_SYN)
        )
        sniffer.feed(syn)
        from repro.net.packet import TCP_RST

        rst = decode_frame(
            1.0, build_tcp_packet(1.0, WEB1, CLIENT, 80, 40000, TCP_RST)
        )
        record = sniffer.feed(rst)
        assert record is not None
        assert record.fid.client_ip == CLIENT

    def test_udp_flow_aggregation(self):
        sniffer = FlowSniffer()
        up = decode_frame(
            0.0, build_udp_packet(0.0, CLIENT, WEB1, 5000, 6000, b"abc")
        )
        down = decode_frame(
            0.5, build_udp_packet(0.5, WEB1, CLIENT, 6000, 5000, b"defgh")
        )
        sniffer.feed(up)
        sniffer.feed(down)
        flows = sniffer.flush()
        assert len(flows) == 1
        assert flows[0].bytes_up == 3
        assert flows[0].bytes_down == 5
        assert flows[0].packets == 2

    def test_dns_udp_skipped(self):
        sniffer = FlowSniffer()
        pkt = decode_frame(
            0.0, build_udp_packet(0.0, CLIENT, DNS_SERVER, 999, 53, b"q")
        )
        assert sniffer.feed(pkt) is None
        assert sniffer.stats["skipped_dns"] == 1
        assert sniffer.flush() == []

    def test_udp_idle_expiry(self):
        sniffer = FlowSniffer(idle_timeout=10.0)
        pkt = decode_frame(
            0.0, build_udp_packet(0.0, CLIENT, WEB1, 5000, 6000, b"x")
        )
        sniffer.feed(pkt)
        assert sniffer.expire(5.0) == []
        assert len(sniffer.expire(20.0)) == 1
        assert sniffer.active_count == 0


class TestFlowTagger:
    def test_tags_after_warmup(self):
        resolver = DnsResolver(clist_size=16)
        resolver.insert(CLIENT, "www.example.com", [WEB1], timestamp=350.0)
        tagger = FlowTagger(resolver, warmup=300.0, trace_start=0.0)
        flow = tagger.tag(_flow(start=400.0))
        assert flow.fqdn == "www.example.com"
        assert tagger.stats.hit_ratio(Protocol.HTTP) == 1.0

    def test_warmup_excluded_from_stats(self):
        resolver = DnsResolver(clist_size=16)
        tagger = FlowTagger(resolver, warmup=300.0, trace_start=0.0)
        tagger.tag(_flow(start=100.0))
        assert tagger.stats.warmup_skipped == 1
        assert tagger.stats.total(Protocol.HTTP) == 0

    def test_warmup_flows_still_tagged(self):
        resolver = DnsResolver(clist_size=16)
        resolver.insert(CLIENT, "early.example.com", [WEB1], timestamp=10.0)
        tagger = FlowTagger(resolver, warmup=300.0, trace_start=0.0)
        flow = tagger.tag(_flow(start=50.0))
        assert flow.fqdn == "early.example.com"

    def test_trace_start_lazily_set(self):
        resolver = DnsResolver(clist_size=16)
        tagger = FlowTagger(resolver, warmup=10.0)
        tagger.tag(_flow(start=1000.0))
        assert tagger.trace_start == 1000.0

    def test_miss_recorded_per_protocol(self):
        resolver = DnsResolver(clist_size=16)
        tagger = FlowTagger(resolver, warmup=0.0, trace_start=0.0)
        tagger.tag(_flow(proto=Protocol.P2P, start=10.0))
        assert tagger.stats.hit_ratio(Protocol.P2P) == 0.0
        assert tagger.stats.total(Protocol.P2P) == 1


class TestPolicyEnforcer:
    def _enforcer(self):
        enforcer = PolicyEnforcer()
        enforcer.add_rule(PolicyRule("*.zynga.com", PolicyAction.BLOCK))
        enforcer.add_rule(PolicyRule("zynga.com", PolicyAction.BLOCK))
        enforcer.add_rule(
            PolicyRule("*.dropbox.com", PolicyAction.PRIORITIZE)
        )
        enforcer.add_rule(
            PolicyRule("*", PolicyAction.RATE_LIMIT, dst_port=6969, rate_kbps=64)
        )
        return enforcer

    def test_block_by_fqdn(self):
        enforcer = self._enforcer()
        flow = _flow()
        flow.fqdn = "farm.zynga.com"
        assert enforcer.decide(flow).action is PolicyAction.BLOCK

    def test_subdomain_match_without_wildcard(self):
        rule = PolicyRule("zynga.com", PolicyAction.BLOCK)
        assert rule.matches_fqdn("deep.sub.zynga.com")
        assert rule.matches_fqdn("zynga.com")
        assert not rule.matches_fqdn("notzynga.com")

    def test_prioritize(self):
        enforcer = self._enforcer()
        flow = _flow()
        flow.fqdn = "client.dropbox.com"
        decision = enforcer.decide(flow)
        assert decision.action is PolicyAction.PRIORITIZE
        assert decision.allows

    def test_default_allow(self):
        enforcer = self._enforcer()
        flow = _flow()
        flow.fqdn = "www.wikipedia.org"
        assert enforcer.decide(flow).action is PolicyAction.ALLOW

    def test_untagged_flow_allowed(self):
        enforcer = self._enforcer()
        assert enforcer.decide(_flow()).action is PolicyAction.ALLOW

    def test_port_rule(self):
        enforcer = self._enforcer()
        flow = _flow(dport=6969)
        flow.fqdn = "tracker.example.com"
        decision = enforcer.decide(flow)
        assert decision.action is PolicyAction.RATE_LIMIT
        assert decision.rule.rate_kbps == 64

    def test_preinstall_blocks_before_flow(self):
        """The paper's killer feature: the decision exists before the flow."""
        enforcer = self._enforcer()
        obs = DnsObservation(
            5.0, CLIENT, "cityville.zynga.com", [WEB1, WEB2]
        )
        enforcer.on_dns_response(obs)
        assert enforcer.preinstalled_count() == 2
        # The flow arrives *untagged* (e.g. resolver missed it) but the
        # pre-installed verdict still applies.
        flow = _flow(server=WEB2)
        decision = enforcer.decide(flow)
        assert decision.action is PolicyAction.BLOCK
        assert decision.preinstalled
        assert enforcer.stats["preinstalled_used"] == 1

    def test_label_overrides_preinstalled_verdict(self):
        """A tagged flow is judged by its label, not by a stale
        (client, server) verdict for a different service on the same
        cloud address."""
        enforcer = self._enforcer()
        enforcer.on_dns_response(
            DnsObservation(5.0, CLIENT, "farm.zynga.com", [WEB1])
        )
        flow = _flow(server=WEB1)
        flow.fqdn = "www.wikipedia.org"  # same EC2 box, different service
        decision = enforcer.decide(flow)
        assert decision.action is PolicyAction.ALLOW
        assert not decision.preinstalled

    def test_preinstall_ignores_unmatched(self):
        enforcer = self._enforcer()
        obs = DnsObservation(5.0, CLIENT, "www.wikipedia.org", [WEB1])
        enforcer.on_dns_response(obs)
        assert enforcer.preinstalled_count() == 0

    def test_first_match_wins(self):
        enforcer = PolicyEnforcer()
        enforcer.add_rule(PolicyRule("a.example.com", PolicyAction.PRIORITIZE))
        enforcer.add_rule(PolicyRule("*.example.com", PolicyAction.BLOCK))
        flow = _flow()
        flow.fqdn = "a.example.com"
        assert enforcer.decide(flow).action is PolicyAction.PRIORITIZE
