"""Tests for packet header encode/decode round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.flow import TransportProto
from repro.net.ip import ip_from_str
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    Packet,
    PacketDecodeError,
    TCP_ACK,
    TCP_SYN,
    TcpHeader,
    UdpHeader,
    build_tcp_packet,
    build_udp_packet,
    checksum16,
    decode_frame,
)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example-style check: all-zero data sums to 0xFFFF.
        assert checksum16(b"\x00\x00") == 0xFFFF

    def test_odd_length_padding(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")


class TestUdpRoundtrip:
    def test_udp_frame(self):
        frame = build_udp_packet(
            1.5,
            ip_from_str("10.0.0.1"),
            ip_from_str("8.8.8.8"),
            5353,
            53,
            b"hello-dns",
        )
        packet = decode_frame(1.5, frame)
        assert packet.transport is TransportProto.UDP
        assert packet.ipv4.src == ip_from_str("10.0.0.1")
        assert packet.ipv4.dst == ip_from_str("8.8.8.8")
        assert packet.src_port == 5353
        assert packet.dst_port == 53
        assert packet.payload == b"hello-dns"

    def test_udp_no_ethernet(self):
        frame = build_udp_packet(
            0.0, 1, 2, 1000, 53, b"x", with_ethernet=False
        )
        packet = decode_frame(0.0, frame, with_ethernet=False)
        assert packet.payload == b"x"

    @given(st.binary(max_size=512))
    def test_udp_payload_roundtrip(self, payload):
        frame = build_udp_packet(0.0, 7, 9, 1234, 4321, payload)
        assert decode_frame(0.0, frame).payload == payload


class TestTcpRoundtrip:
    def test_syn_packet(self):
        frame = build_tcp_packet(
            2.0,
            ip_from_str("10.0.0.2"),
            ip_from_str("93.184.216.34"),
            40000,
            443,
            TCP_SYN,
            seq=100,
        )
        packet = decode_frame(2.0, frame)
        assert packet.transport is TransportProto.TCP
        assert packet.tcp.is_syn
        assert not packet.tcp.is_synack
        assert packet.tcp.seq == 100

    def test_synack_flags(self):
        header = TcpHeader(443, 40000, flags=TCP_SYN | TCP_ACK)
        assert header.is_synack
        assert not header.is_syn

    def test_payload_roundtrip(self):
        frame = build_tcp_packet(
            0.0, 1, 2, 1111, 80, TCP_ACK, payload=b"GET / HTTP/1.1\r\n"
        )
        packet = decode_frame(0.0, frame)
        assert packet.payload == b"GET / HTTP/1.1\r\n"


class TestDecodeErrors:
    def test_truncated_ethernet(self):
        with pytest.raises(PacketDecodeError):
            decode_frame(0.0, b"\x00" * 10)

    def test_wrong_ethertype(self):
        frame = EthernetHeader(b"\x00" * 6, b"\x00" * 6, 0x86DD).encode()
        with pytest.raises(PacketDecodeError):
            decode_frame(0.0, frame + b"\x00" * 40)

    def test_not_ipv4(self):
        bad = bytes([0x60]) + b"\x00" * 30  # version 6
        with pytest.raises(PacketDecodeError):
            IPv4Header.decode(bad)

    def test_truncated_ipv4(self):
        with pytest.raises(PacketDecodeError):
            IPv4Header.decode(b"\x45\x00")

    def test_unsupported_ip_proto(self):
        ip = IPv4Header(src=1, dst=2, proto=1)  # ICMP
        datagram = ip.encode(0)
        with pytest.raises(PacketDecodeError):
            decode_frame(0.0, datagram, with_ethernet=False)

    def test_truncated_udp(self):
        with pytest.raises(PacketDecodeError):
            UdpHeader.decode(b"\x00\x01")

    def test_truncated_tcp(self):
        with pytest.raises(PacketDecodeError):
            TcpHeader.decode(b"\x00" * 8)


class TestPacketAccessors:
    def test_ports_require_transport(self):
        packet = Packet(timestamp=0.0, ipv4=IPv4Header(src=1, dst=2, proto=6))
        with pytest.raises(ValueError):
            _ = packet.src_port
        with pytest.raises(ValueError):
            _ = packet.dst_port
        assert packet.transport is None
