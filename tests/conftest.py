"""Shared test configuration: hypothesis example-budget profiles.

Suites that should scale their search budget with the environment use
bare ``@settings(deadline=None)`` (no ``max_examples``) so the active
profile decides:

* built-in default — 100 examples, the local developer run;
* ``ci`` — a much higher budget for the scheduled slow CI leg
  (``pytest --hypothesis-profile=ci``), with ``print_blob`` on so a
  failure prints the reproduction blob into the build log alongside
  the uploaded ``.hypothesis`` example database;
* ``dev`` — a fast smoke profile for local iteration
  (``pytest --hypothesis-profile=dev``).

Tests that pin ``max_examples`` explicitly keep their pinned budget
under every profile.
"""

from hypothesis import settings

settings.register_profile(
    "ci", max_examples=300, deadline=None, print_blob=True
)
settings.register_profile("dev", max_examples=10, deadline=None)
