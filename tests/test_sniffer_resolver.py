"""Tests for the DNS Resolver (Algorithm 1): Clist semantics, eviction,
back-references, and the paper's dimensioning behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sniffer.resolver import DnsResolver

C1, C2 = 0x0A000001, 0x0A000002
S1, S2, S3 = 0xD0000001, 0xD0000002, 0xD0000003


class TestInsertLookup:
    def test_basic_tagging(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "itunes.apple.com", [S1, S2])
        assert resolver.lookup(C1, S1) == "itunes.apple.com"
        assert resolver.lookup(C1, S2) == "itunes.apple.com"

    def test_lookup_is_per_client(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "a.com", [S1])
        assert resolver.lookup(C2, S1) is None

    def test_unknown_server_misses(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "a.com", [S1])
        assert resolver.lookup(C1, S3) is None

    def test_empty_answers_ignored(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "nxdomain.com", [])
        assert resolver.live_entries == 0

    def test_duplicate_answers_collapse(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "a.com", [S1, S1, S1])
        assert resolver.lookup(C1, S1) == "a.com"
        assert resolver.live_entries == 1
        resolver.check_invariants()

    def test_all_duplicate_answer_list_burns_one_slot(self):
        """A duplicate-only answer list is deduplicated before the Clist
        slot is consumed: it must leave exactly the state of the
        equivalent single-answer insert — one slot, one link, no
        spurious replacements."""
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "a.com", [S1] * 50)
        single = DnsResolver(clist_size=10)
        single.insert(C1, "a.com", [S1])
        assert resolver.live_entries == single.live_entries == 1
        assert resolver.server_count(C1) == 1
        assert resolver.stats.replacements == 0
        # Raw answer counting still sees the wire-level answer list.
        assert resolver.stats.answers == 50
        resolver.check_invariants()

    def test_repeated_duplicate_responses_follow_fifo(self):
        """Duplicate-laden responses interleave with the Clist FIFO the
        same way clean responses do (each response is one slot)."""
        resolver = DnsResolver(clist_size=2)
        resolver.insert(C1, "a.com", [S1, S1])
        resolver.insert(C1, "b.com", [S2, S2, S2])
        resolver.insert(C1, "c.com", [S3])  # wraps, evicts a.com
        assert resolver.lookup(C1, S1) is None
        assert resolver.lookup(C1, S2) == "b.com"
        assert resolver.lookup(C1, S3) == "c.com"
        assert resolver.stats.overwrites == 1
        resolver.check_invariants()

    def test_last_written_wins_on_shared_server(self):
        # Same client, same serverIP, two FQDNs: the paper's "confusion"
        # case — DN-Hunter returns the last observed FQDN (Sec. 6).
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "old.example.com", [S1])
        resolver.insert(C1, "new.example.com", [S1])
        assert resolver.lookup(C1, S1) == "new.example.com"
        assert resolver.stats.replacements == 1
        resolver.check_invariants()

    def test_peek_does_not_count(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "a.com", [S1])
        assert resolver.peek(C1, S1) == "a.com"
        assert resolver.stats.lookups == 0


class TestCircularEviction:
    def test_wraparound_evicts_oldest(self):
        resolver = DnsResolver(clist_size=3)
        resolver.insert(C1, "one.com", [S1])
        resolver.insert(C1, "two.com", [S2])
        resolver.insert(C1, "three.com", [S3])
        # Fourth insert overwrites slot 0 ("one.com").
        resolver.insert(C2, "four.com", [S1])
        assert resolver.lookup(C1, S1) is None
        assert resolver.lookup(C1, S2) == "two.com"
        assert resolver.lookup(C2, S1) == "four.com"
        assert resolver.stats.overwrites == 1
        resolver.check_invariants()

    def test_l_bounds_cache_lifetime(self):
        # With L=5 and one response per second, entries older than 5s
        # must be gone — L limits the entry lifetime (Sec. 3.1.1).
        resolver = DnsResolver(clist_size=5)
        for second in range(10):
            resolver.insert(C1, f"site{second}.com", [1000 + second], float(second))
        assert resolver.oldest_entry_age(10.0) <= 5.0
        for second in range(5):
            assert resolver.lookup(C1, 1000 + second) is None
        for second in range(5, 10):
            assert resolver.lookup(C1, 1000 + second) == f"site{second}.com"

    def test_eviction_cleans_client_map(self):
        resolver = DnsResolver(clist_size=1)
        resolver.insert(C1, "a.com", [S1])
        resolver.insert(C2, "b.com", [S2])
        assert resolver.client_count == 1
        assert resolver.server_count(C1) == 0
        assert resolver.server_count(C2) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            DnsResolver(clist_size=0)


class TestStats:
    def test_hit_ratio(self):
        resolver = DnsResolver(clist_size=10)
        resolver.insert(C1, "a.com", [S1])
        resolver.lookup(C1, S1)
        resolver.lookup(C1, S2)
        assert resolver.stats.hit_ratio == pytest.approx(0.5)
        assert resolver.stats.responses == 1
        assert resolver.stats.answers == 1

    def test_empty_hit_ratio(self):
        assert DnsResolver(clist_size=4).stats.hit_ratio == 0.0


# Strategy: a stream of (client, fqdn-id, answer-set) inserts interleaved
# with lookups, against a tiny Clist to force constant wraparound.
_ops = st.lists(
    st.tuples(
        st.integers(0, 3),              # client
        st.integers(0, 9),              # fqdn id
        st.sets(st.integers(0, 7), min_size=1, max_size=3),  # answers
    ),
    min_size=1,
    max_size=200,
)


class TestPropertyInvariants:
    @settings(max_examples=50)
    @given(_ops)
    def test_structural_invariants_hold_under_churn(self, operations):
        resolver = DnsResolver(clist_size=4)
        for client, fqdn_id, answers in operations:
            resolver.insert(client, f"site{fqdn_id}.com", sorted(answers))
        resolver.check_invariants()
        assert resolver.live_entries <= 4

    @settings(max_examples=50)
    @given(_ops)
    def test_lookup_matches_reference_model(self, operations):
        """The resolver must agree with a brute-force model of Alg. 1."""
        clist_size = 4
        resolver = DnsResolver(clist_size=clist_size)
        # Reference: list of (client, fqdn, answers) kept to last L inserts
        # with per-(client, server) last-writer-wins semantics.
        window: list[tuple[int, str, tuple[int, ...]]] = []
        for client, fqdn_id, answers in operations:
            fqdn = f"site{fqdn_id}.com"
            answer_list = sorted(answers)
            resolver.insert(client, fqdn, answer_list)
            window.append((client, fqdn, tuple(answer_list)))
            window = window[-clist_size:]
        for client in range(4):
            for server in range(8):
                expected = None
                for w_client, w_fqdn, w_answers in window:
                    if w_client == client and server in w_answers:
                        expected = w_fqdn
                assert resolver.peek(client, server) == expected
