"""Parallel per-segment analytics must be bit-identical to serial.

``FlowStore(parallel=N)`` fans the surviving per-segment kernels out
over a thread pool and merges the partials in segment order, so every
grouped aggregation, record query and row-index view has to come back
**bit-identical** — same values, same ordering — to the serial pass
(N=1) and to the in-memory columnar store, for N=1, 2 and 4, including
stores holding empty segments and a live unsealed tail, with pruning
on or off, with and without numpy.
"""

from array import array
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analytics.database as database_module
from repro.analytics.database import FlowDatabase
from repro.analytics.storage import (
    FlowStore,
    SegmentReader,
    _map_local_fqdns,
)
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto

PARALLELISMS = (1, 2, 4)


@contextmanager
def _without_numpy():
    saved = database_module._np
    database_module._np = None
    try:
        yield
    finally:
        database_module._np = saved


def _flow(i: int) -> FlowRecord:
    fqdn = (
        None, "www.Example.com", "cdn.example.net", "a.b.tracker.org",
        "www.example.com", "",
    )[i % 6]
    return FlowRecord(
        fid=FiveTuple(5 + i % 7, 40 + i % 9, 1024 + i,
                      (80, 443)[i % 2], TransportProto.TCP),
        start=float(i * 3 % 97),
        end=float(i * 3 % 97) + 2.0,
        protocol=(Protocol.HTTP, Protocol.TLS)[i % 2],
        bytes_up=10 + i,
        bytes_down=1000 + i,
        packets=4,
        fqdn=fqdn,
        cert_name="cert.example.com" if i % 3 == 0 else None,
        true_fqdn="true.example.com" if i % 5 == 0 else None,
    )


def _inject_empty_segment(directory) -> None:
    """Commit a zero-row segment mid-manifest the way a pathological
    writer could: it must be inert for every query at every N."""
    store = FlowStore(directory)
    name = store._writer.write(FlowDatabase())
    reader = SegmentReader.open(store.directory / name)
    reader.fqdn_map = _map_local_fqdns(store._interns, reader.labels)
    store._segments.append(reader)
    store._write_manifest()


def _store_with_everything(tmp_path, n_flows=60, live_tail=True):
    """Sealed segments + one empty segment + (optionally) a live tail."""
    directory = tmp_path / "store"
    store = FlowStore(directory, spill_rows=9)
    flows = [_flow(i) for i in range(n_flows)]
    sealed = flows if not live_tail else flows[:n_flows - 5]
    store.add_all(sealed)
    store.close()
    _inject_empty_segment(directory)
    return directory, flows


def _open(directory, flows, n, live_tail, **kwargs):
    # wal=False: these tests open several live instances of the same
    # directory side by side, each adding its own copy of the tail —
    # with the journal on, each later open would (correctly) replay the
    # earlier instance's durable tail and double the rows.  Parallelism
    # identity is about the query path, not durability.
    store = FlowStore(directory, parallel=n, wal=False, **kwargs)
    if live_tail:
        store.add_all(flows[len(flows) - 5:])  # no flush: stays live
    return store


def _assert_bit_identical(store, serial, mem):
    """Every grouped aggregation in the query surface, plus record and
    row-index views — compared with plain ``==`` (values *and*
    ordering)."""
    assert store.fqdn_server_counts() == serial.fqdn_server_counts()
    assert store.fqdn_server_counts() == sorted(mem.fqdn_server_counts())
    assert store.fqdn_client_counts() == serial.fqdn_client_counts()
    assert store.fqdn_flow_byte_totals() == serial.fqdn_flow_byte_totals()
    assert store.server_flow_counts() == serial.server_flow_counts()
    assert store.fqdn_first_seen() == serial.fqdn_first_seen()
    assert store.fqdn_bin_pairs(10.0) == serial.fqdn_bin_pairs(10.0)
    assert store.server_fqdn_bin_triples(10.0) == (
        serial.server_fqdn_bin_triples(10.0)
    )
    assert store.unique_servers_per_bin("example.com", 10.0) == (
        serial.unique_servers_per_bin("example.com", 10.0)
    )
    assert store.server_bins_for_fqdn("www.example.com", 10.0) == (
        serial.server_bins_for_fqdn("www.example.com", 10.0)
    )
    rows = store.rows_for_servers(serial.servers())
    serial_rows = serial.rows_for_servers(serial.servers())
    assert list(rows) == list(serial_rows)
    assert store.sld_flow_stats(rows) == serial.sld_flow_stats(
        serial_rows
    )
    assert store.fqdns_for_rows(rows) == serial.fqdns_for_rows(
        serial_rows
    )
    window_rows = store.rows_in_window(10.0, 60.0)
    assert list(window_rows) == list(serial.rows_in_window(10.0, 60.0))
    assert store.fqdn_server_counts(window_rows) == (
        serial.fqdn_server_counts(window_rows)
    )
    assert store.query_by_fqdn("www.example.com") == (
        serial.query_by_fqdn("www.example.com")
    )
    assert store.query_by_domain("example.net") == (
        serial.query_by_domain("example.net")
    )
    assert store.query_by_servers(serial.servers()[:5]) == (
        serial.query_by_servers(serial.servers()[:5])
    )
    assert store.query_by_port(443) == serial.query_by_port(443)
    assert store.query_in_window(10.0, 60.0) == (
        serial.query_in_window(10.0, 60.0)
    )
    assert list(store.tagged_rows()) == list(serial.tagged_rows())
    assert store.fqdns() == serial.fqdns()
    assert store.slds() == serial.slds()
    assert store.tagged_count == serial.tagged_count
    assert store.count_by_protocol() == serial.count_by_protocol()
    assert store.time_span() == serial.time_span()


class TestParallelDifferential:
    @pytest.mark.parametrize("live_tail", [False, True])
    @pytest.mark.parametrize("n", PARALLELISMS)
    def test_parallel_equals_serial_full_surface(
        self, tmp_path, n, live_tail
    ):
        directory, flows = _store_with_everything(
            tmp_path, live_tail=live_tail
        )
        serial = _open(directory, flows, 1, live_tail)
        store = _open(directory, flows, n, live_tail)
        mem = FlowDatabase.from_flows(flows)
        assert len(store.segments) >= 5  # incl. the empty segment
        _assert_bit_identical(store, serial, mem)
        store.close()
        serial.close()

    @pytest.mark.parametrize("n", PARALLELISMS[1:])
    def test_parallel_with_pruning_disabled(self, tmp_path, n):
        directory, flows = _store_with_everything(tmp_path)
        serial = _open(directory, flows, 1, True, prune=False)
        store = _open(directory, flows, n, True, prune=False)
        mem = FlowDatabase.from_flows(flows)
        _assert_bit_identical(store, serial, mem)
        store.close()
        serial.close()

    @pytest.mark.parametrize("n", PARALLELISMS[1:])
    def test_parallel_streaming_mode(self, tmp_path, n):
        """cache_segments=False releases segments as kernels finish;
        answers must not change and nothing stays resident."""
        directory, flows = _store_with_everything(tmp_path, live_tail=False)
        serial = FlowStore(directory)
        store = FlowStore(directory, parallel=n, cache_segments=False)
        mem = FlowDatabase.from_flows(flows)
        _assert_bit_identical(store, serial, mem)
        assert all(not seg.resident for seg in store.segments)
        store.close()
        serial.close()

    def test_parallel_without_numpy(self, tmp_path):
        with _without_numpy():
            directory, flows = _store_with_everything(tmp_path)
            serial = _open(directory, flows, 1, True)
            store = _open(directory, flows, 4, True)
            mem = FlowDatabase.from_flows(flows)
            _assert_bit_identical(store, serial, mem)
            store.close()
            serial.close()

    def test_parallel_validation_and_factory(self, tmp_path):
        with pytest.raises(ValueError):
            FlowStore(tmp_path / "s", parallel=0)
        store = FlowDatabase(spill_dir=tmp_path / "db", parallel=3)
        assert isinstance(store, FlowStore)
        assert store.parallel == 3
        with pytest.raises(TypeError):
            FlowDatabase(parallel=3)  # parallel without spill_dir

    def test_pool_is_lazy_and_survives_close(self, tmp_path):
        directory, flows = _store_with_everything(
            tmp_path, live_tail=False
        )
        store = FlowStore(directory, parallel=2)
        assert store._pool is None
        first = store.fqdn_server_counts()
        assert store._pool is not None
        store.close()
        assert store._pool is None
        assert store.fqdn_server_counts() == first  # usable after close


class TestParallelProperty:
    @settings(deadline=None, max_examples=20)
    @given(
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=1, max_value=11),
        st.sampled_from(PARALLELISMS),
    )
    def test_random_shapes(self, tmp_path_factory, n_flows, spill_rows, n):
        """Random store shapes (segment count, tail size) stay
        bit-identical between serial and parallel execution."""
        tmp_path = tmp_path_factory.mktemp("par")
        flows = [_flow(i) for i in range(n_flows)]
        store = FlowStore(tmp_path / "store", spill_rows=spill_rows)
        store.add_all(flows)  # tail may or may not be live here
        serial = FlowStore(tmp_path / "store")
        serial._tail.add_all(flows[len(serial):])
        parallel_store = FlowStore(tmp_path / "store", parallel=n)
        parallel_store._tail.add_all(flows[len(parallel_store):])
        assert parallel_store.fqdn_server_counts() == (
            serial.fqdn_server_counts()
        )
        assert parallel_store.fqdn_flow_byte_totals() == (
            serial.fqdn_flow_byte_totals()
        )
        assert parallel_store.server_flow_counts() == (
            serial.server_flow_counts()
        )
        assert list(parallel_store.tagged_rows()) == list(
            serial.tagged_rows()
        )
        rows = parallel_store.rows_in_window(5.0, 50.0)
        assert list(rows) == list(serial.rows_in_window(5.0, 50.0))
        assert parallel_store.sld_flow_stats(rows) == (
            serial.sld_flow_stats(array("I", rows))
        )
