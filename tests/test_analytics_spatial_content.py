"""Tests for Spatial Discovery (Alg. 2) and Content Discovery (Alg. 3)."""

import pytest

from repro.analytics.content import ContentDiscovery
from repro.analytics.database import FlowDatabase
from repro.analytics.spatial import SELF_LABEL, SpatialDiscovery
from repro.net.flow import FiveTuple, FlowRecord, TransportProto
from repro.net.ip import IPv4Network, ip_from_str
from repro.orgdb.ipdb import IpOrganizationDb

# Address plan: Akamai 2.16.0.0/24, Amazon 54.0.0.0/24, Zynga 64.0.0.0/24.
AKAMAI1 = ip_from_str("2.16.0.10")
AKAMAI2 = ip_from_str("2.16.0.11")
AMAZON1 = ip_from_str("54.0.0.10")
AMAZON2 = ip_from_str("54.0.0.11")
ZYNGA1 = ip_from_str("64.0.0.10")


def _ipdb():
    db = IpOrganizationDb()
    db.add_network(IPv4Network.parse("2.16.0.0/24"), "akamai")
    db.add_network(IPv4Network.parse("54.0.0.0/24"), "amazon")
    db.add_network(IPv4Network.parse("64.0.0.0/24"), "zynga")
    return db


def _flow(client, server, fqdn, start=0.0, dport=80):
    return FlowRecord(
        fid=FiveTuple(client, server, 40000, dport, TransportProto.TCP),
        start=start,
        fqdn=fqdn,
    )


@pytest.fixture
def flows_db():
    database = FlowDatabase()
    # zynga.com: static on Akamai (2 servers), games on Amazon (2 servers),
    # mafiawars on Zynga itself.
    database.add_all(
        [
            _flow(1, AKAMAI1, "static.zynga.com", 0.0),
            _flow(1, AKAMAI2, "assets.static.zynga.com", 10.0),
            _flow(2, AMAZON1, "cityville.zynga.com", 20.0),
            _flow(2, AMAZON2, "farmville.zynga.com", 30.0),
            _flow(3, AMAZON1, "cityville.zynga.com", 40.0),
            _flow(3, AMAZON1, "cityville.zynga.com", 700.0),
            _flow(3, ZYNGA1, "mafiawars.zynga.com", 50.0),
            # another org on the same Amazon machines:
            _flow(4, AMAZON1, "www.dropbox.com", 60.0, dport=443),
            _flow(4, AMAZON2, "client.dropbox.com", 70.0, dport=443),
        ]
    )
    return database


class TestSpatialDiscovery:
    def test_organization_extraction(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        report = spatial.discover("cityville.zynga.com")
        assert report.organization == "zynga.com"
        assert report.server_set == {AKAMAI1, AKAMAI2, AMAZON1, AMAZON2, ZYNGA1}

    def test_per_fqdn_server_sets(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        report = spatial.discover("zynga.com")
        assert report.per_fqdn["cityville.zynga.com"] == {AMAZON1}
        assert report.per_fqdn["static.zynga.com"] == {AKAMAI1}

    def test_cdn_grouping_and_shares(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        report = spatial.discover("zynga.com")
        assert report.per_cdn["akamai"].server_count == 2
        assert report.per_cdn["amazon"].server_count == 2
        # Zynga's own servers become SELF.
        assert SELF_LABEL in report.per_cdn
        assert report.per_cdn[SELF_LABEL].servers == {ZYNGA1}
        assert report.flow_share("amazon") == pytest.approx(4 / 7)
        ranked = report.ranked_cdns()
        assert ranked[0].organization == "amazon"

    def test_without_ipdb_everything_unknown(self, flows_db):
        spatial = SpatialDiscovery(flows_db, ipdb=None)
        report = spatial.discover("zynga.com")
        assert set(report.per_cdn) == {"unknown"}

    def test_empty_domain(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        report = spatial.discover("nonexistent.org")
        assert report.total_flows == 0
        assert report.flow_share("akamai") == 0.0
        assert report.ranked_cdns() == []

    def test_access_matrix(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        matrix = spatial.server_access_matrix("zynga.com")
        assert matrix["amazon"][AMAZON1] == pytest.approx(3 / 7)
        total = sum(v for row in matrix.values() for v in row.values())
        assert total == pytest.approx(1.0)

    def test_access_matrix_empty(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        assert spatial.server_access_matrix("none.org") == {}

    def test_track_changes_bins(self, flows_db):
        spatial = SpatialDiscovery(flows_db, _ipdb())
        series = spatial.track_changes("cityville.zynga.com", bin_seconds=600)
        assert len(series) == 2
        assert series[0][1] == {AMAZON1}


class TestContentDiscovery:
    def test_hosted_domains_on_amazon(self, flows_db):
        content = ContentDiscovery(flows_db, _ipdb())
        shares = content.hosted_domains_of_cdn("amazon", k=10)
        domains = [s.domain for s in shares]
        assert domains[0] == "zynga.com"   # 4 flows vs dropbox 2
        assert "dropbox.com" in domains
        zynga = shares[0]
        assert zynga.flows == 4
        assert zynga.share == pytest.approx(4 / 6)
        assert zynga.fqdn_count == 2

    def test_hosted_domains_explicit_servers(self, flows_db):
        content = ContentDiscovery(flows_db)
        shares = content.hosted_domains([AKAMAI1, AKAMAI2])
        assert [s.domain for s in shares] == ["zynga.com"]

    def test_hosted_fqdns(self, flows_db):
        content = ContentDiscovery(flows_db)
        fqdns = content.hosted_fqdns([AMAZON1])
        assert fqdns == {
            "cityville.zynga.com", "www.dropbox.com",
        }

    def test_k_truncation(self, flows_db):
        content = ContentDiscovery(flows_db, _ipdb())
        assert len(content.hosted_domains_of_cdn("amazon", k=1)) == 1

    def test_cdn_name_requires_ipdb(self, flows_db):
        content = ContentDiscovery(flows_db)
        with pytest.raises(ValueError):
            content.hosted_domains_of_cdn("amazon")

    def test_service_tokens(self, flows_db):
        content = ContentDiscovery(flows_db)
        tokens = content.hosted_service_tokens([AMAZON1, AMAZON2])
        names = [t for t, _ in tokens]
        assert "cityville" in names
        assert "farmville" in names

    def test_common_domains(self, flows_db):
        content = ContentDiscovery(flows_db)
        common = content.common_domains(
            [AMAZON1, AMAZON2], [AKAMAI1, AKAMAI2]
        )
        assert common == {"zynga.com"}

    def test_cdn_popularity(self, flows_db):
        content = ContentDiscovery(flows_db, _ipdb())
        popularity = content.cdn_popularity(["akamai", "amazon", "zynga"])
        assert popularity["akamai"] == (2, 2)
        fqdns, flows = popularity["amazon"]
        assert fqdns == 4
        assert flows == 6
