"""Tests for the TCP flow tracker state machine."""

import pytest

from repro.net.flow import Protocol
from repro.net.ip import ip_from_str
from repro.net.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    build_tcp_packet,
    decode_frame,
)
from repro.net.tcp import TcpFlowTracker, classify_port

CLIENT = ip_from_str("10.0.0.5")
SERVER = ip_from_str("93.184.216.34")


def _pkt(t, src, dst, sport, dport, flags, payload=b""):
    frame = build_tcp_packet(t, src, dst, sport, dport, flags, payload=payload)
    return decode_frame(t, frame)


def _handshake(tracker, t0=0.0, sport=40000, dport=80):
    tracker.feed(_pkt(t0, CLIENT, SERVER, sport, dport, TCP_SYN))
    tracker.feed(_pkt(t0 + 0.01, SERVER, CLIENT, dport, sport, TCP_SYN | TCP_ACK))
    tracker.feed(_pkt(t0 + 0.02, CLIENT, SERVER, sport, dport, TCP_ACK))


class TestLifecycle:
    def test_full_connection(self):
        tracker = TcpFlowTracker()
        _handshake(tracker)
        tracker.feed(
            _pkt(0.1, CLIENT, SERVER, 40000, 80, TCP_ACK, b"GET / HTTP/1.1")
        )
        tracker.feed(
            _pkt(0.2, SERVER, CLIENT, 80, 40000, TCP_ACK, b"HTTP/1.1 200 OK")
        )
        tracker.feed(_pkt(0.3, CLIENT, SERVER, 40000, 80, TCP_FIN | TCP_ACK))
        record = tracker.feed(
            _pkt(0.4, SERVER, CLIENT, 80, 40000, TCP_FIN | TCP_ACK)
        )
        assert record is not None
        assert record.fid.client_ip == CLIENT
        assert record.fid.server_ip == SERVER
        assert record.fid.dst_port == 80
        assert record.bytes_up == len(b"GET / HTTP/1.1")
        assert record.bytes_down == len(b"HTTP/1.1 200 OK")
        assert record.start == 0.0
        assert record.end == 0.4
        assert tracker.active_count == 0

    def test_rst_closes_immediately(self):
        tracker = TcpFlowTracker()
        _handshake(tracker)
        record = tracker.feed(_pkt(0.5, SERVER, CLIENT, 80, 40000, TCP_RST))
        assert record is not None
        assert tracker.active_count == 0

    def test_single_fin_keeps_connection(self):
        tracker = TcpFlowTracker()
        _handshake(tracker)
        assert tracker.feed(
            _pkt(0.3, CLIENT, SERVER, 40000, 80, TCP_FIN | TCP_ACK)
        ) is None
        assert tracker.active_count == 1

    def test_client_orientation_from_syn(self):
        tracker = TcpFlowTracker()
        tracker.feed(_pkt(0.0, CLIENT, SERVER, 51000, 443, TCP_SYN))
        record = tracker.feed(_pkt(0.1, SERVER, CLIENT, 443, 51000, TCP_RST))
        assert record.fid.client_ip == CLIENT
        assert record.fid.dst_port == 443

    def test_midstream_pickup_uses_port_heuristic(self):
        tracker = TcpFlowTracker()
        # No SYN: data from server first; lower port should become server.
        tracker.feed(_pkt(0.0, SERVER, CLIENT, 80, 40000, TCP_ACK, b"data"))
        tracker.feed(_pkt(0.5, CLIENT, SERVER, 40000, 80, TCP_RST))
        records = list(tracker.completed())
        assert len(records) == 1
        assert records[0].fid.server_ip == SERVER
        assert records[0].bytes_down == 4
        assert tracker.stats["midstream"] >= 1


class TestTimeoutsAndFlush:
    def test_expire_idle(self):
        tracker = TcpFlowTracker(idle_timeout=10.0)
        _handshake(tracker)
        assert tracker.expire(5.0) == []
        expired = tracker.expire(100.0)
        assert len(expired) == 1
        assert tracker.active_count == 0

    def test_flush_all(self):
        tracker = TcpFlowTracker()
        _handshake(tracker, sport=40001)
        _handshake(tracker, sport=40002, dport=443)
        records = tracker.flush()
        assert len(records) == 2
        assert tracker.active_count == 0

    def test_stats_counting(self):
        tracker = TcpFlowTracker()
        _handshake(tracker)
        tracker.flush()
        assert tracker.stats["packets"] == 3
        assert tracker.stats["flows"] == 1


class TestPayloadCapture:
    def test_first_payload_captured(self):
        tracker = TcpFlowTracker(capture_payload=8)
        _handshake(tracker)
        tracker.feed(
            _pkt(0.1, CLIENT, SERVER, 40000, 80, TCP_ACK, b"GET /index.html")
        )
        fid = next(iter(tracker._active))
        assert tracker._active[fid].first_payload == b"GET /ind"

    def test_rejects_non_tcp(self):
        tracker = TcpFlowTracker()
        from repro.net.packet import build_udp_packet

        udp = decode_frame(0.0, build_udp_packet(0.0, 1, 2, 53, 53, b""))
        with pytest.raises(ValueError):
            tracker.feed(udp)


class TestClassifyPort:
    @pytest.mark.parametrize(
        "port,expected",
        [
            (80, Protocol.HTTP),
            (443, Protocol.TLS),
            (25, Protocol.MAIL),
            (110, Protocol.MAIL),
            (1863, Protocol.CHAT),
            (554, Protocol.STREAMING),
            (53, Protocol.DNS),
            (34567, Protocol.OTHER),
        ],
    )
    def test_port_map(self, port, expected):
        assert classify_port(port) is expected

    def test_tls_override(self):
        assert classify_port(8080, has_tls=True) is Protocol.TLS
