"""Tests for domain name parsing and the TLD/2LD hierarchy split."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.name import (
    DomainName,
    DomainNameError,
    effective_tld,
    reverse_pointer_name,
    second_level_domain,
)
from repro.net.ip import ip_from_str

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=10
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))


class TestEffectiveTld:
    @pytest.mark.parametrize(
        "fqdn,tld",
        [
            ("www.example.com", "com"),
            ("example.com", "com"),
            ("static.bbc.co.uk", "co.uk"),
            ("foo.example.it", "it"),
            ("host.example.unknowntld", "unknowntld"),
        ],
    )
    def test_cases(self, fqdn, tld):
        assert effective_tld(fqdn) == tld

    def test_case_insensitive(self):
        assert effective_tld("WWW.EXAMPLE.COM") == "com"


class TestSecondLevelDomain:
    @pytest.mark.parametrize(
        "fqdn,sld",
        [
            ("www.example.com", "example.com"),
            ("example.com", "example.com"),
            ("smtp2.mail.google.com", "google.com"),
            ("static.bbc.co.uk", "bbc.co.uk"),
            ("com", "com"),
            ("a.b.c.d.zynga.com", "zynga.com"),
        ],
    )
    def test_cases(self, fqdn, sld):
        assert second_level_domain(fqdn) == sld


class TestDomainName:
    def test_normalization(self):
        name = DomainName("  WWW.Example.COM. ")
        assert name.fqdn == "www.example.com"
        assert str(name) == "www.example.com"

    def test_labels(self):
        assert DomainName("a.b.com").labels == ("a", "b", "com")

    def test_tld_sld_properties(self):
        name = DomainName("media4.cdn.linkedin.com")
        assert name.tld == "com"
        assert name.sld == "linkedin.com"

    def test_subdomain_labels(self):
        assert DomainName("smtp2.mail.google.com").subdomain_labels == (
            "smtp2",
            "mail",
        )
        assert DomainName("google.com").subdomain_labels == ()
        assert DomainName("static.bbc.co.uk").subdomain_labels == ("static",)

    def test_is_subdomain_of(self):
        name = DomainName("mail.google.com")
        assert name.is_subdomain_of("google.com")
        assert name.is_subdomain_of(DomainName("google.com"))
        assert name.is_subdomain_of("mail.google.com")
        assert not name.is_subdomain_of("oogle.com")
        assert not name.is_subdomain_of("example.com")

    def test_parent(self):
        assert DomainName("a.b.com").parent() == DomainName("b.com")
        with pytest.raises(DomainNameError):
            DomainName("com").parent()

    def test_equality_and_hash(self):
        assert DomainName("A.com") == DomainName("a.com")
        assert DomainName("a.com") == "a.com"
        assert hash(DomainName("a.com")) == hash(DomainName("A.COM."))

    def test_ordering(self):
        assert DomainName("a.com") < DomainName("b.com")

    @pytest.mark.parametrize("bad", ["", ".", "a..b", "-" * 300, "a." + "b" * 64])
    def test_invalid_names(self, bad):
        with pytest.raises(DomainNameError):
            DomainName(bad)

    @given(st.lists(_label, min_size=1, max_size=5))
    def test_roundtrip_arbitrary_labels(self, labels):
        text = ".".join(labels)
        if len(text) > 253:
            return
        name = DomainName(text)
        assert name.labels == tuple(labels)


class TestReversePointer:
    def test_known_value(self):
        addr = ip_from_str("192.0.2.10")
        assert reverse_pointer_name(addr) == "10.2.0.192.in-addr.arpa"
