"""Differential tests: flat resolver vs. the seed reference (Alg. 1).

The optimised flat-key resolver in ``repro.sniffer.resolver`` must be
observationally identical to the seed implementation retained in
``repro.sniffer.resolver_reference``: same lookup results, same label
histories, same statistics, over arbitrary interleavings of inserts,
lookups and circular-list wraps.  These tests drive both structures
with seeded-random operation streams (10k+ mixed operations) and
compare them exhaustively, running the structural invariant checks
after every wrap.

The fused sniffer event loop re-inlines the resolver's insert/lookup
bodies for speed, so a second differential holds the fused pipeline to
the modular pipeline over random event streams.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.sniffer.pipeline import SnifferPipeline
from repro.sniffer.resolver import DnsResolver
from repro.sniffer.resolver_reference import DnsResolver as ReferenceResolver
from repro.sniffer.sharding import ShardedResolver


def _random_ops(rng, count, clients=6, servers=24, fqdns=40):
    """A mixed operation stream: ~60% inserts, ~40% lookups.

    Inserts include duplicate-laden and empty answer lists so the
    dedup-before-slot behaviour is exercised.
    """
    ops = []
    for _ in range(count):
        if rng.random() < 0.6:
            n = rng.choice((0, 1, 1, 1, 2, 2, 3, 4, 8))
            answers = [rng.randrange(servers) for _ in range(n)]
            if answers and rng.random() < 0.3:  # duplicate-heavy response
                answers += [rng.choice(answers)] * rng.randint(1, 3)
            ops.append(
                (
                    "insert",
                    rng.randrange(clients),
                    f"site{rng.randrange(fqdns)}.example.com",
                    answers,
                    rng.random() * 1000.0,
                )
            )
        else:
            ops.append(
                ("lookup", rng.randrange(clients), rng.randrange(servers))
            )
    return ops


def _drive(fast, reference, ops, clist_size, check_every_wrap=True):
    """Apply ``ops`` to both resolvers, comparing as we go."""
    inserted = 0
    for op in ops:
        if op[0] == "insert":
            _, client, fqdn, answers, ts = op
            fast.insert(client, fqdn, answers, ts)
            reference.insert(client, fqdn, list(answers), ts)
            if answers:
                inserted += 1
                if check_every_wrap and inserted % clist_size == 0:
                    fast.check_invariants()
                    reference.check_invariants()
        else:
            _, client, server = op
            assert fast.lookup(client, server) == reference.lookup(
                client, server
            )


def _compare_full_state(fast, reference, clients, servers):
    for client in range(clients):
        for server in range(servers):
            assert fast.peek(client, server) == reference.peek(
                client, server
            ), (client, server)
            assert fast.lookup_all(client, server) == reference.lookup_all(
                client, server
            ), (client, server)
    assert fast.stats == reference.stats
    assert fast.live_entries == reference.live_entries
    assert fast.client_count == reference.client_count
    for client in range(clients):
        assert fast.server_count(client) == reference.server_count(client)


class TestDifferential10k:
    """The headline differential: 10k mixed ops across Clist sizes."""

    @pytest.mark.parametrize("clist_size", [3, 7, 64, 1024])
    def test_mixed_ops_match_reference(self, clist_size):
        rng = random.Random(clist_size * 1009 + 17)
        fast = DnsResolver(clist_size=clist_size)
        reference = ReferenceResolver(clist_size=clist_size)
        _drive(fast, reference, _random_ops(rng, 10_000), clist_size)
        fast.check_invariants()
        reference.check_invariants()
        _compare_full_state(fast, reference, clients=6, servers=24)

    @pytest.mark.parametrize("depth", [1, 3])
    def test_multilabel_matches_reference(self, depth):
        rng = random.Random(depth * 7919)
        clist_size = 16
        fast = DnsResolver(clist_size=clist_size, multi_label_depth=depth)
        reference = ReferenceResolver(
            clist_size=clist_size, multi_label_depth=depth
        )
        _drive(fast, reference, _random_ops(rng, 10_000), clist_size)
        fast.check_invariants()
        reference.check_invariants()
        _compare_full_state(fast, reference, clients=6, servers=24)

    def test_oldest_entry_age_matches(self):
        fast = DnsResolver(clist_size=8)
        reference = ReferenceResolver(clist_size=8)
        assert fast.oldest_entry_age(5.0) is None
        rng = random.Random(4)
        for step in range(40):
            client = rng.randrange(3)
            answers = [rng.randrange(9)]
            fast.insert(client, "x.com", answers, float(step))
            reference.insert(client, "x.com", answers, float(step))
            assert fast.oldest_entry_age(100.0) == reference.oldest_entry_age(
                100.0
            )

    def test_batch_insert_matches_per_call(self):
        rng = random.Random(99)
        observations = [
            DnsObservation(
                timestamp=float(i),
                client_ip=rng.randrange(5),
                fqdn=f"s{rng.randrange(20)}.com",
                answers=[rng.randrange(16) for _ in range(rng.randint(0, 3))],
            )
            for i in range(3000)
        ]
        batched = DnsResolver(clist_size=64)
        batched.insert_batch(observations)
        manual = DnsResolver(clist_size=64)
        for obs in observations:
            manual.insert(obs.client_ip, obs.fqdn, obs.answers, obs.timestamp)
        assert batched.stats == manual.stats
        for client in range(5):
            for server in range(16):
                assert batched.peek(client, server) == manual.peek(
                    client, server
                )

    def test_sharded_batch_matches_per_call(self):
        rng = random.Random(3)
        observations = [
            DnsObservation(
                timestamp=float(i),
                client_ip=rng.randrange(64),
                fqdn=f"s{rng.randrange(20)}.com",
                answers=[rng.randrange(16) for _ in range(rng.randint(1, 3))],
            )
            for i in range(2000)
        ]
        batched = ShardedResolver(shards=4, clist_size=256)
        batched.insert_batch(observations)
        manual = ShardedResolver(shards=4, clist_size=256)
        for obs in observations:
            manual.insert(obs.client_ip, obs.fqdn, obs.answers, obs.timestamp)
        assert batched.stats == manual.stats
        assert batched.shard_balance() == manual.shard_balance()


# Hypothesis view of the same property, on tiny Clists where every
# example wraps constantly.
_hyp_ops = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 9),
        st.lists(st.integers(0, 7), min_size=0, max_size=5),
    ),
    min_size=1,
    max_size=120,
)


class TestDifferentialHypothesis:
    @settings(max_examples=60)
    @given(_hyp_ops)
    def test_inserts_match_reference(self, operations):
        fast = DnsResolver(clist_size=4)
        reference = ReferenceResolver(clist_size=4)
        for client, fqdn_id, answers in operations:
            fast.insert(client, f"s{fqdn_id}.com", answers)
            reference.insert(client, f"s{fqdn_id}.com", list(answers))
        fast.check_invariants()
        for client in range(4):
            for server in range(8):
                assert fast.peek(client, server) == reference.peek(
                    client, server
                )
        assert fast.stats == reference.stats


def _random_events(rng, count):
    events = []
    protocols = list(Protocol)
    for i in range(count):
        ts = i * 0.37
        if rng.random() < 0.45:
            events.append(
                DnsObservation(
                    timestamp=ts,
                    client_ip=rng.randrange(8),
                    fqdn=f"host{rng.randrange(30)}.example.com",
                    answers=[
                        rng.randrange(40)
                        for _ in range(rng.choice((0, 1, 1, 2, 3)))
                    ],
                )
            )
        else:
            events.append(
                FlowRecord(
                    fid=FiveTuple(
                        rng.randrange(8),
                        rng.randrange(40),
                        rng.randrange(1024, 65535),
                        rng.choice((80, 443, 6969)),
                        TransportProto.TCP,
                    ),
                    start=ts,
                    protocol=rng.choice(protocols),
                )
            )
    return events


class TestPipelineDifferential:
    """The fused event loop against the modular one, and across shards."""

    def _modular_pipeline(self, clist_size, warmup):
        # A non-empty monitored set that admits every simulated client
        # forces the modular code path while filtering nothing.
        return SnifferPipeline(
            clist_size=clist_size,
            warmup=warmup,
            monitored_clients=set(range(8)),
        )

    @pytest.mark.parametrize("clist_size,warmup", [(16, 0.0), (64, 100.0)])
    def test_fused_matches_modular(self, clist_size, warmup):
        rng = random.Random(clist_size)
        events = _random_events(rng, 6000)
        fused = SnifferPipeline(clist_size=clist_size, warmup=warmup)
        fused.process_events(events)
        fused.resolver.check_invariants()
        modular = self._modular_pipeline(clist_size, warmup)
        modular.process_events(
            [_copy_event(event) for event in events]
        )
        assert len(fused.tagged_flows) == len(modular.tagged_flows)
        for ours, theirs in zip(fused.tagged_flows, modular.tagged_flows):
            assert ours.fqdn == theirs.fqdn
        assert fused.resolver.stats == modular.resolver.stats
        assert fused.tagger.stats.hits == modular.tagger.stats.hits
        assert fused.tagger.stats.misses == modular.tagger.stats.misses
        assert (
            fused.tagger.stats.warmup_skipped
            == modular.tagger.stats.warmup_skipped
        )
        assert (
            fused.dns_sniffer.stats["empty_answers"]
            == modular.dns_sniffer.stats["empty_answers"]
        )

    def test_sharded_pipeline_matches_single_labels(self):
        rng = random.Random(11)
        events = _random_events(rng, 4000)
        single = SnifferPipeline(clist_size=4000, warmup=0.0)
        single.process_events(events)
        sharded = SnifferPipeline(clist_size=16000, warmup=0.0, shards=4)
        sharded.process_events([_copy_event(event) for event in events])
        assert isinstance(sharded.resolver, ShardedResolver)
        for ours, theirs in zip(single.tagged_flows, sharded.tagged_flows):
            assert ours.fqdn == theirs.fqdn
        assert (
            sharded.resolver.stats.responses
            == single.resolver.stats.responses
        )


def _copy_event(event):
    if isinstance(event, DnsObservation):
        return DnsObservation(
            timestamp=event.timestamp,
            client_ip=event.client_ip,
            fqdn=event.fqdn,
            answers=list(event.answers),
            ttl=event.ttl,
        )
    return FlowRecord(
        fid=event.fid,
        start=event.start,
        end=event.end,
        protocol=event.protocol,
    )
