"""Tests for pcap reader/writer round-trips."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ip import ip_from_str
from repro.net.packet import build_udp_packet, decode_frame
from repro.net.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PcapFormatError,
    PcapReader,
    PcapRecord,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def _roundtrip(records, linktype=LINKTYPE_ETHERNET):
    buffer = io.BytesIO()
    writer = PcapWriter(buffer, linktype=linktype)
    writer.write_all(records)
    buffer.seek(0)
    reader = PcapReader(buffer)
    return reader, list(reader)


class TestRoundtrip:
    def test_empty_file(self):
        reader, records = _roundtrip([])
        assert records == []
        assert reader.linktype == LINKTYPE_ETHERNET

    def test_single_record(self):
        reader, records = _roundtrip([PcapRecord(12.5, b"\xAA\xBB")])
        assert len(records) == 1
        assert records[0].data == b"\xAA\xBB"
        assert records[0].timestamp == pytest.approx(12.5, abs=1e-6)

    def test_linktype_raw(self):
        reader, _ = _roundtrip([], linktype=LINKTYPE_RAW)
        assert reader.linktype == LINKTYPE_RAW

    def test_microsecond_rounding_carry(self):
        # 0.9999996 rounds to 1.0s; writer must carry, not emit 1e6 usecs.
        reader, records = _roundtrip([PcapRecord(0.9999996, b"x")])
        assert records[0].timestamp == pytest.approx(1.0, abs=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.binary(min_size=1, max_size=100),
            ),
            max_size=20,
        )
    )
    def test_many_records_roundtrip(self, raw):
        records = [PcapRecord(t, d) for t, d in raw]
        _, out = _roundtrip(records)
        assert [r.data for r in out] == [r.data for r in records]
        for before, after in zip(records, out):
            assert after.timestamp == pytest.approx(before.timestamp, abs=1e-5)


class TestFileHelpers:
    def test_write_and_read_file(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        frame = build_udp_packet(
            3.25, ip_from_str("10.0.0.1"), ip_from_str("8.8.8.8"), 999, 53, b"q"
        )
        count = write_pcap(path, [PcapRecord(3.25, frame)])
        assert count == 1
        records = read_pcap(path)
        assert len(records) == 1
        packet = decode_frame(records[0].timestamp, records[0].data)
        assert packet.dst_port == 53


class TestErrorHandling:
    def test_bad_magic(self):
        with pytest.raises(PcapFormatError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_header(self):
        with pytest.raises(PcapFormatError):
            PcapReader(io.BytesIO(b"\xd4\xc3"))

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(0.0, b"ABCDEF")
        data = buffer.getvalue()[:-3]  # chop the body
        reader = PcapReader(io.BytesIO(data))
        with pytest.raises(PcapFormatError):
            list(reader)

    def test_swapped_endianness(self):
        # Write a big-endian header manually; reader must adapt.
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 1, 500000, 3, 3) + b"abc"
        reader = PcapReader(io.BytesIO(header + record))
        records = list(reader)
        assert records[0].data == b"abc"
        assert records[0].timestamp == pytest.approx(1.5)
