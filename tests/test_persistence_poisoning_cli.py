"""Tests for flow persistence, poisoning injection, and the sniffer CLI."""

import io
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytics.database import FlowDatabase
from repro.analytics.persistence import (
    dump_flows,
    flow_from_dict,
    flow_to_dict,
    load_database,
    load_flows,
    save_database,
)
from repro.net.flow import (
    DnsObservation,
    FiveTuple,
    FlowRecord,
    Protocol,
    TransportProto,
)
from repro.simulation.poisoning import ATTACKER_BLOCK, inject_poisoning


def _flow(fqdn="www.example.com", cert=None, truth=None):
    return FlowRecord(
        fid=FiveTuple(101, 202, 40000, 443, TransportProto.TCP),
        start=1.5,
        end=3.25,
        protocol=Protocol.TLS,
        bytes_up=1234,
        bytes_down=56789,
        packets=42,
        fqdn=fqdn,
        cert_name=cert,
        true_fqdn=truth,
    )


class TestFlowSerialization:
    def test_roundtrip_full(self):
        flow = _flow(cert="*.example.com", truth="www.example.com")
        out = flow_from_dict(flow_to_dict(flow))
        assert out == flow

    def test_roundtrip_untagged(self):
        flow = _flow(fqdn=None)
        out = flow_from_dict(flow_to_dict(flow))
        assert out.fqdn is None

    def test_version_check(self):
        data = flow_to_dict(_flow())
        data["v"] = 99
        with pytest.raises(ValueError):
            flow_from_dict(data)

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 65535),
        st.sampled_from(list(Protocol)),
        st.floats(min_value=0, max_value=1e7, allow_nan=False),
    )
    def test_property_roundtrip(self, server, port, protocol, start):
        flow = FlowRecord(
            fid=FiveTuple(7, server, 1024, port, TransportProto.UDP),
            start=start,
            protocol=protocol,
        )
        assert flow_from_dict(flow_to_dict(flow)) == flow


class TestDumpLoad:
    def test_stream_roundtrip(self):
        flows = [_flow(fqdn=f"h{i}.example.com") for i in range(5)]
        buffer = io.StringIO()
        assert dump_flows(flows, buffer) == 5
        buffer.seek(0)
        assert list(load_flows(buffer)) == flows

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        dump_flows([_flow()], buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(list(load_flows(buffer))) == 1

    def test_malformed_line_raises(self):
        buffer = io.StringIO("{not json}\n")
        with pytest.raises(ValueError, match="line 1"):
            list(load_flows(buffer))

    def test_database_file_roundtrip(self, tmp_path):
        database = FlowDatabase.from_flows(
            [_flow(fqdn=f"site{i}.example.com") for i in range(10)]
        )
        path = str(tmp_path / "flows.jsonl")
        assert save_database(database, path) == 10
        loaded = load_database(path)
        assert len(loaded) == 10
        assert set(loaded.fqdns()) == set(database.fqdns())

    def test_file_is_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "flows.jsonl")
        save_database(FlowDatabase.from_flows([_flow()]), path)
        with open(path) as handle:
            for line in handle:
                json.loads(line)


class TestPoisoningInjection:
    def _observations(self):
        return [
            DnsObservation(float(t), 1, "bank.example.com", [500])
            for t in range(0, 1000, 100)
        ] + [
            DnsObservation(50.0, 1, "other.example.com", [600]),
        ]

    def test_rewrites_only_target_in_window(self):
        observations = self._observations()
        campaign = inject_poisoning(
            observations, "bank.example.com", start=300.0, end=600.0
        )
        assert campaign.poisoned_observations == 4  # t=300,400,500,600
        for observation in observations:
            poisoned = observation.answers[0] in ATTACKER_BLOCK
            should_be = (
                observation.fqdn == "bank.example.com"
                and 300 <= observation.timestamp <= 600
            )
            assert poisoned == should_be

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            inject_poisoning([], "x.com", start=10.0, end=5.0)

    def test_detector_catches_campaign(self):
        from repro.analytics.anomaly import MappingAnomalyDetector

        observations = self._observations()
        inject_poisoning(
            observations, "bank.example.com", start=300.0, end=600.0
        )
        detector = MappingAnomalyDetector(min_history=2, prefix_bits=16)
        alerts = [
            alert
            for observation in sorted(observations, key=lambda o: o.timestamp)
            if (alert := detector.observe(observation)) is not None
        ]
        assert alerts
        assert alerts[0].fqdn == "bank.example.com"
        assert 300 <= alerts[0].timestamp <= 600


class TestSnifferCli:
    @pytest.fixture()
    def pcap_path(self, tmp_path):
        from repro.net.pcap import write_pcap
        from repro.simulation import build_trace

        trace = build_trace("EU1-FTTH", seed=19)
        records = trace.to_packets(max_flows=60)
        path = str(tmp_path / "capture.pcap")
        write_pcap(path, records)
        return path

    def test_sniff_pcap(self, pcap_path):
        from repro.sniffer.cli import sniff_pcap

        pipeline = sniff_pcap(pcap_path, warmup=0.0)
        flows = pipeline.tagged_flows
        assert len(flows) == 60
        assert any(f.fqdn for f in flows)

    def test_cli_main(self, pcap_path, tmp_path, capsys):
        from repro.sniffer.cli import main

        dump = str(tmp_path / "labels.jsonl")
        code = main([pcap_path, "--warmup", "0", "--dump", dump])
        assert code == 0
        output = capsys.readouterr().out
        assert "flows reconstructed : 60" in output
        assert "top 10 labels:" in output
        with open(dump) as handle:
            assert sum(1 for _ in handle) == 60

    def test_cli_missing_file(self, capsys):
        from repro.sniffer.cli import main

        assert main(["/nonexistent.pcap"]) == 1
        assert "error" in capsys.readouterr().err

    def test_cli_fanout(self, pcap_path, capsys):
        from repro.sniffer.cli import main, sniff_pcap

        single = sniff_pcap(pcap_path, warmup=0.0)
        code = main([pcap_path, "--warmup", "0", "--processes", "2"])
        assert code == 0
        output = capsys.readouterr().out
        labeled = sum(1 for f in single.tagged_flows if f.fqdn)
        assert f"flows reconstructed : {len(single.tagged_flows)}" in output
        assert f"flows labeled       : {labeled}" in output
        assert "worker processes    : 2" in output
        assert "top 10 labels:" in output

    def test_cli_fanout_rejects_dump(self, pcap_path, tmp_path, capsys):
        from repro.sniffer.cli import main

        with pytest.raises(SystemExit):
            main([pcap_path, "--processes", "2",
                  "--dump", str(tmp_path / "x.jsonl")])
