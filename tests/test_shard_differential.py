"""Sharded scatter-gather must be bit-identical to one flat store.

The :class:`ShardCoordinator` merge contract: every query against an
N-shard store equals the same query against one flat ``FlowStore``
(and the in-memory seed ``FlowDatabase``) holding the same rows in
shard-major order — same values, same ordering, same interned ids —
for N=1, 2 and 4, over both backends (in-process stores and
one-process-per-shard workers), including empty shards, shards with a
quarantined segment, a live unsealed tail per shard, and the no-numpy
code paths.

The manifest-only pruning half: ``prune_report`` on a fresh
coordinator must decide scan-vs-prune for every sealed segment in
every shard from ``MANIFEST.json`` bytes alone — the ``storage._io``
read seam proves that not a single segment file (not even a header)
is opened — and its verdicts must match the verdicts of the shards'
own footer-based reports.
"""

import json
from array import array
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analytics.database as database_module
from faultfs import FaultFS, inject
from repro.analytics.database import FlowDatabase
from repro.analytics.shard import (
    SHARDS_NAME,
    ShardCoordinator,
    ShardError,
    ShardRouter,
    _manifest_entries,
)
from repro.analytics.storage import FlowStore, QueryHint, StorageError
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto

SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("inprocess", "process")


@contextmanager
def _without_numpy():
    saved = database_module._np
    database_module._np = None
    try:
        yield
    finally:
        database_module._np = saved


def _flow(i: int, clients: int = 7) -> FlowRecord:
    fqdn = (
        None, "www.Example.com", "cdn.example.net", "a.b.tracker.org",
        "www.example.com", "",
    )[i % 6]
    return FlowRecord(
        fid=FiveTuple(5 + i % clients, 40 + i % 9, 1024 + i,
                      (80, 443)[i % 2], TransportProto.TCP),
        start=float(i * 3 % 97),
        end=float(i * 3 % 97) + 2.0,
        protocol=(Protocol.HTTP, Protocol.TLS)[i % 2],
        bytes_up=10 + i,
        bytes_down=1000 + i,
        packets=4,
        fqdn=fqdn,
        cert_name="cert.example.com" if i % 3 == 0 else None,
        true_fqdn="true.example.com" if i % 5 == 0 else None,
    )


def _shard_major(router: ShardRouter, flows) -> list[FlowRecord]:
    """The flat-oracle ingest order: shard 0's rows, then shard 1's..."""
    return [flow for part in router.split_flows(flows) for flow in part]


def _build_sharded(directory, flows, shards, live_tail=True,
                   backend="inprocess", **kwargs):
    """An N-shard store with sealed segments per shard and (optionally)
    a live unsealed tail per shard."""
    coordinator = ShardCoordinator(
        directory, shards=shards, spill_rows=9, backend=backend, **kwargs
    )
    sealed = flows if not live_tail else flows[:len(flows) - 8]
    coordinator.add_all(sealed)
    coordinator.flush()
    if live_tail:
        coordinator.add_all(flows[len(flows) - 8:])  # no flush: live
    return coordinator


def _flat_oracle(directory, router, flows) -> FlowStore:
    store = FlowStore(directory, spill_rows=9, wal=False)
    store.add_all(_shard_major(router, flows))
    return store


def _assert_bit_identical(coord, flat, mem):
    """The full query surface, compared with plain ``==`` (values *and*
    ordering) against the flat store, plus the in-memory seed store
    where ordering semantics carry over."""
    assert coord.fqdn_server_counts() == flat.fqdn_server_counts()
    assert coord.fqdn_server_counts() == sorted(mem.fqdn_server_counts())
    assert coord.fqdn_client_counts() == flat.fqdn_client_counts()
    assert coord.fqdn_flow_byte_totals() == flat.fqdn_flow_byte_totals()
    assert coord.server_flow_counts() == flat.server_flow_counts()
    assert coord.fqdn_first_seen() == flat.fqdn_first_seen()
    assert coord.fqdn_bin_pairs(10.0) == flat.fqdn_bin_pairs(10.0)
    assert coord.server_fqdn_bin_triples(10.0) == (
        flat.server_fqdn_bin_triples(10.0)
    )
    assert coord.unique_servers_per_bin("example.com", 10.0) == (
        flat.unique_servers_per_bin("example.com", 10.0)
    )
    assert coord.server_bins_for_fqdn("www.example.com", 10.0) == (
        flat.server_bins_for_fqdn("www.example.com", 10.0)
    )
    assert coord.servers() == flat.servers()
    assert coord.ports() == flat.ports()
    rows = coord.rows_for_servers(flat.servers())
    flat_rows = flat.rows_for_servers(flat.servers())
    assert list(rows) == list(flat_rows)
    assert coord.sld_flow_stats(rows) == flat.sld_flow_stats(flat_rows)
    assert coord.fqdns_for_rows(rows) == flat.fqdns_for_rows(flat_rows)
    window_rows = coord.rows_in_window(10.0, 60.0)
    assert list(window_rows) == list(flat.rows_in_window(10.0, 60.0))
    assert coord.fqdn_server_counts(window_rows) == (
        flat.fqdn_server_counts(window_rows)
    )
    assert coord.fqdn_first_seen(window_rows) == (
        flat.fqdn_first_seen(window_rows)
    )
    assert list(coord.rows_for_fqdn("www.example.com")) == (
        list(flat.rows_for_fqdn("www.example.com"))
    )
    assert list(coord.rows_for_domain("example.net")) == (
        list(flat.rows_for_domain("example.net"))
    )
    assert list(coord.rows_for_port(443)) == list(flat.rows_for_port(443))
    assert coord.query_by_fqdn("www.example.com") == (
        flat.query_by_fqdn("www.example.com")
    )
    assert coord.query_by_domain("example.net") == (
        flat.query_by_domain("example.net")
    )
    assert coord.query_by_servers(flat.servers()[:5]) == (
        flat.query_by_servers(flat.servers()[:5])
    )
    assert coord.query_by_port(443) == flat.query_by_port(443)
    assert coord.query_in_window(10.0, 60.0) == (
        flat.query_in_window(10.0, 60.0)
    )
    assert coord.servers_for_fqdn("www.example.com") == (
        flat.servers_for_fqdn("www.example.com")
    )
    assert coord.servers_for_domain("example.com") == (
        flat.servers_for_domain("example.com")
    )
    assert coord.fqdns_for_servers(flat.servers()[:5]) == (
        flat.fqdns_for_servers(flat.servers()[:5])
    )
    assert list(coord.tagged_rows()) == list(flat.tagged_rows())
    assert coord.fqdns() == flat.fqdns()
    assert coord.slds() == flat.slds()
    assert coord.fqdns() == mem.fqdns()
    assert coord.fqdns_for_domain("example.com") == (
        flat.fqdns_for_domain("example.com")
    )
    assert coord.tagged_count == flat.tagged_count
    assert coord.count_by_protocol() == flat.count_by_protocol()
    assert coord.time_span() == flat.time_span()
    assert len(coord) == len(flat)
    assert list(coord) == list(flat)


class TestShardedDifferential:
    @pytest.mark.parametrize("live_tail", [False, True])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_inprocess_equals_flat_full_surface(
        self, tmp_path, shards, live_tail
    ):
        flows = [_flow(i) for i in range(60)]
        coord = _build_sharded(
            tmp_path / "sharded", flows, shards, live_tail=live_tail
        )
        flat = _flat_oracle(tmp_path / "flat", coord.router, flows)
        mem = FlowDatabase.from_flows(_shard_major(coord.router, flows))
        _assert_bit_identical(coord, flat, mem)
        coord.close()
        flat.close()

    @pytest.mark.parametrize("shards", (2, 4))
    def test_process_backend_equals_flat_full_surface(
        self, tmp_path, shards
    ):
        flows = [_flow(i) for i in range(60)]
        # Build + seal in-process, then reopen the same directory with
        # one worker process per shard (live tails rebuilt per worker
        # would double rows — the subprocess leg runs fully sealed).
        built = _build_sharded(
            tmp_path / "sharded", flows, shards, live_tail=False
        )
        built.close()
        coord = ShardCoordinator(tmp_path / "sharded", backend="process")
        flat = _flat_oracle(tmp_path / "flat", coord.router, flows)
        mem = FlowDatabase.from_flows(_shard_major(coord.router, flows))
        _assert_bit_identical(coord, flat, mem)
        coord.close()
        flat.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_without_numpy(self, tmp_path, backend):
        with _without_numpy():
            flows = [_flow(i) for i in range(48)]
            live_tail = backend == "inprocess"
            coord = _build_sharded(
                tmp_path / "sharded", flows, 3, live_tail=live_tail,
                backend="inprocess",
            )
            if backend == "process":
                coord.close()
                # fork start method: the workers inherit the parent's
                # _np = None gating, so the subprocess leg really runs
                # the pure-python kernels.
                coord = ShardCoordinator(
                    tmp_path / "sharded", backend="process",
                    start_method="fork",
                )
            flat = _flat_oracle(tmp_path / "flat", coord.router, flows)
            mem = FlowDatabase.from_flows(
                _shard_major(coord.router, flows)
            )
            _assert_bit_identical(coord, flat, mem)
            coord.close()
            flat.close()

    def test_empty_shard_is_inert(self, tmp_path):
        # client addresses 5 + i % 7 with 14 shards: half the shards
        # never receive a flow; they must contribute nothing and
        # break nothing.
        flows = [_flow(i) for i in range(40)]
        coord = _build_sharded(tmp_path / "sharded", flows, 14)
        assert any(not part for part in coord.router.split_flows(flows))
        flat = _flat_oracle(tmp_path / "flat", coord.router, flows)
        mem = FlowDatabase.from_flows(_shard_major(coord.router, flows))
        _assert_bit_identical(coord, flat, mem)
        coord.close()
        flat.close()

    def test_quarantined_segment_shard(self, tmp_path):
        """A corrupt segment in one shard quarantines on open; every
        query then equals a flat store of the *surviving* rows."""
        flows = [_flow(i) for i in range(60)]
        built = _build_sharded(
            tmp_path / "sharded", flows, 2, live_tail=False
        )
        router = built.router
        split = router.split_flows(flows)
        built.close()
        victim_dir = tmp_path / "sharded" / "shard-01"
        victims = sorted(victim_dir.glob("seg-*.fseg"))
        assert victims, "shard-01 sealed no segments"
        victims[0].write_bytes(b"FSG1 but not really")
        # shard-01's first segment held its first 9 rows (spill_rows=9).
        survivors = split[0] + split[1][9:]
        coord = ShardCoordinator(tmp_path / "sharded")
        flat = FlowStore(tmp_path / "flat", spill_rows=9, wal=False)
        flat.add_all(survivors)
        mem = FlowDatabase.from_flows(survivors)
        health = coord.health()
        assert health["status"] == "degraded"
        assert [
            (entry["shard"], entry["name"])
            for entry in health["quarantined_segments"]
        ] == [(1, victims[0].name)]
        _assert_bit_identical(coord, flat, mem)
        stats = coord.stats()
        assert stats["health"]["status"] == "degraded"
        assert stats["rows"] == len(survivors)
        coord.close()
        flat.close()

    def test_live_tail_rows_and_second_round(self, tmp_path):
        """Rows keep flowing after the first query round; results track
        the flat oracle (one quiescent comparison per round)."""
        flows = [_flow(i) for i in range(40)]
        later = [_flow(i) for i in range(40, 72)]
        coord = _build_sharded(tmp_path / "sharded", flows, 3)
        assert coord.fqdn_server_counts()  # round 1 syncs labels
        coord.add_all(later)
        everything = flows[:32] + flows[32:] + later
        # Shard-major oracle over the full ingest history: within one
        # shard the earlier rows precede the later ones.
        flat = _flat_oracle(tmp_path / "flat", coord.router, everything)
        assert coord.fqdn_server_counts() == flat.fqdn_server_counts()
        assert coord.server_flow_counts() == flat.server_flow_counts()
        assert list(coord.tagged_rows()) == list(flat.tagged_rows())
        assert len(coord) == len(flat)
        coord.close()
        flat.close()


class TestShardedProperty:
    @settings(deadline=None, max_examples=15)
    @given(
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=11),
        st.sampled_from(["client", "time"]),
    )
    def test_random_shapes(self, tmp_path_factory, n_flows, shards,
                           spill_rows, by):
        """Random store shapes (flow count, shard count, segment size,
        routing key) stay bit-identical to the shard-major flat
        oracle."""
        tmp_path = tmp_path_factory.mktemp("shard")
        flows = [_flow(i) for i in range(n_flows)]
        coord = ShardCoordinator(
            tmp_path / "sharded", shards=shards, by=by,
            time_window=16.0, spill_rows=spill_rows,
        )
        coord.add_all(flows)  # tails may or may not be live per shard
        flat = FlowStore(tmp_path / "flat", spill_rows=spill_rows,
                         wal=False)
        flat.add_all(_shard_major(coord.router, flows))
        assert coord.fqdn_server_counts() == flat.fqdn_server_counts()
        assert coord.fqdn_flow_byte_totals() == (
            flat.fqdn_flow_byte_totals()
        )
        assert coord.server_flow_counts() == flat.server_flow_counts()
        assert list(coord.tagged_rows()) == list(flat.tagged_rows())
        assert coord.fqdns() == flat.fqdns()
        rows = coord.rows_in_window(5.0, 50.0)
        assert list(rows) == list(flat.rows_in_window(5.0, 50.0))
        assert coord.sld_flow_stats(rows) == (
            flat.sld_flow_stats(array("I", rows))
        )
        assert coord.time_span() == flat.time_span()
        coord.close()
        flat.close()


class TestManifestOnlyPruning:
    def _sealed_sharded(self, tmp_path, shards=2):
        # start=i*3%97 over 60 flows covers [0, 96]; spill_rows=9 per
        # shard gives several window-disjoint-ish segments per shard.
        flows = [_flow(i) for i in range(60)]
        built = _build_sharded(
            tmp_path / "sharded", flows, shards, live_tail=False
        )
        built.close()
        return tmp_path / "sharded"

    def test_prune_report_opens_zero_segment_files(self, tmp_path):
        """The acceptance property: a fresh coordinator's prune_report
        decides every verdict from manifest bytes alone — the storage
        I/O seam observes zero segment reads (the backend, and with it
        every shard store, is never even started)."""
        directory = self._sealed_sharded(tmp_path)
        hint = QueryHint(window=(0.0, 10.0))
        fs = FaultFS()
        with inject(fs):
            coord = ShardCoordinator(directory)
            report = coord.prune_report(hint)
            coord.close()
        assert fs.reads == 0, fs.read_log
        assert coord._backend is None  # lazy: no shard store opened
        assert report["sharded"] is True
        total = report["scanned_segments"] + report["pruned_segments"]
        assert total == len(report["segments"]) > 0
        assert report["pruned_segments"] > 0  # the hint really prunes

    def test_manifest_verdicts_match_footer_verdicts(self, tmp_path):
        """Decision equivalence: for every segment, the manifest-copy
        verdict equals the verdict the shard's own (footer-backed)
        prune_report produces."""
        directory = self._sealed_sharded(tmp_path)
        for hint in (
            QueryHint(window=(0.0, 10.0)),
            QueryHint(fqdn="www.example.com"),
            QueryHint(sld="tracker.org"),
            QueryHint(servers=[41, 42]),
        ):
            coord = ShardCoordinator(directory)
            report = coord.prune_report(hint)
            coord.close()
            manifest_verdicts = {
                (segment["shard"], segment["name"]): segment["scan"]
                for segment in report["segments"]
            }
            footer_verdicts = {}
            for index in range(2):
                shard_store = FlowStore(directory / f"shard-{index:02d}")
                shard_report = shard_store.prune_report(hint)
                shard_store.close()
                for segment in shard_report["segments"]:
                    footer_verdicts[(index, segment["name"])] = (
                        segment["scan"]
                    )
            assert manifest_verdicts == footer_verdicts

    def test_prune_false_scans_everything(self, tmp_path):
        directory = self._sealed_sharded(tmp_path)
        coord = ShardCoordinator(directory, prune=False)
        report = coord.prune_report(QueryHint(window=(0.0, 1.0)))
        coord.close()
        assert report["pruned_segments"] == 0
        assert report["scanned_segments"] == len(report["segments"])


class TestShardTopologyAndErrors:
    def test_topology_persists_and_mismatch_is_rejected(self, tmp_path):
        directory = tmp_path / "sharded"
        coord = ShardCoordinator(directory, shards=3, by="time",
                                 time_window=60.0)
        coord.add_all([_flow(i) for i in range(10)])
        coord.close()
        config = json.loads((directory / SHARDS_NAME).read_text())
        assert config == {
            "format": 1, "shards": 3, "by": "time", "time_window": 60.0,
        }
        reopened = ShardCoordinator(directory)  # topology from disk
        assert reopened.shards == 3
        assert reopened.router.by == "time"
        assert len(reopened) == 10
        reopened.close()
        with pytest.raises(StorageError):
            ShardCoordinator(directory, shards=2)
        with pytest.raises(StorageError):
            ShardCoordinator(directory, by="client")

    def test_missing_topology_requires_shards(self, tmp_path):
        with pytest.raises(StorageError):
            ShardCoordinator(tmp_path / "nothing")

    def test_factory_returns_coordinator(self, tmp_path):
        store = FlowDatabase(spill_dir=tmp_path / "db", shards=2)
        assert isinstance(store, ShardCoordinator)
        store.close()
        with pytest.raises(TypeError):
            FlowDatabase(shards=2)  # shards without spill_dir

    def test_worker_error_propagates_as_shard_error(self, tmp_path):
        coord = ShardCoordinator(tmp_path / "sharded", shards=2,
                                 backend="process")
        bad = _flow(0)
        bad.packets = -1  # array("I") column rejects it in the worker
        with pytest.raises(ShardError, match="shard"):
            coord.add_all([bad, _flow(1)])
        # Failure is per shard: the healthy shard kept its sub-batch
        # (_flow(1) routed away from the bad row's shard)...
        assert len(coord) == 1
        # ...and the backend stays framed: later requests still work.
        coord.add_all([_flow(i) for i in range(8)])
        assert len(coord) == 9
        coord.close()

    def test_ingest_batch_routes_and_counts(self, tmp_path):
        from repro.sniffer.eventcodec import encode_events

        flows = [_flow(i) for i in range(24)]
        payload = encode_events(flows)
        coord = ShardCoordinator(tmp_path / "sharded", shards=3)
        assert coord.ingest_batch(payload) == 24
        flat = _flat_oracle(tmp_path / "flat", coord.router, flows)
        assert coord.fqdn_server_counts() == flat.fqdn_server_counts()
        assert len(coord) == 24
        coord.close()
        flat.close()

    def test_manifest_entries_reads_rows_and_meta(self, tmp_path):
        directory = tmp_path / "sharded"
        coord = _build_sharded(
            directory, [_flow(i) for i in range(30)], 2, live_tail=False
        )
        coord.close()
        entries = _manifest_entries(directory / "shard-00")
        assert entries
        for name, rows, meta in entries:
            assert name.startswith("seg-")
            assert rows > 0
            assert meta is not None  # v2 manifests carry the footer copy
        assert _manifest_entries(tmp_path / "missing") == []
