"""Tests for FQDN tokenization and service tag extraction (Alg. 4)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytics.database import FlowDatabase
from repro.analytics.tags import ServiceTagExtractor
from repro.analytics.tokens import (
    tokenize_fqdn,
    tokenize_fqdn_keep_sld,
    tokenize_label,
)
from repro.net.flow import FiveTuple, FlowRecord, TransportProto


class TestTokenizeLabel:
    @pytest.mark.parametrize(
        "label,expected",
        [
            ("smtp2", ["smtpN"]),
            ("mail", ["mail"]),
            ("12", ["N"]),
            ("fb_client_2", ["fb", "client", "N"]),
            ("a-b-c", ["a", "b", "c"]),
            ("media4platform", ["mediaNplatform"]),
            ("", []),
            ("___", []),
            ("MiXeD3Case", ["mixedNcase"]),
        ],
    )
    def test_cases(self, label, expected):
        assert tokenize_label(label) == expected


class TestTokenizeFqdn:
    def test_paper_example(self):
        # From Sec. 4.3: smtp2.mail.google.com -> {smtpN, mail}
        assert tokenize_fqdn("smtp2.mail.google.com") == ["smtpN", "mail"]

    def test_no_subdomains(self):
        assert tokenize_fqdn("google.com") == []

    def test_effective_tld(self):
        assert tokenize_fqdn("static3.bbc.co.uk") == ["staticN"]

    def test_invalid_name(self):
        assert tokenize_fqdn("") == []
        assert tokenize_fqdn("..") == []

    def test_keep_sld_variant(self):
        assert tokenize_fqdn_keep_sld("cdn.zynga.com") == ["cdn", "zynga"]
        assert tokenize_fqdn_keep_sld("zynga.com") == ["zynga"]

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                    min_size=1, max_size=8),
            min_size=3,
            max_size=5,
        )
    )
    def test_token_count_bounded_by_labels(self, labels):
        fqdn = ".".join(labels)
        if len(fqdn) > 253:
            return
        tokens = tokenize_fqdn(fqdn)
        # Tokens come only from labels above the 2LD.
        assert len(tokens) >= 0
        for token in tokens:
            assert token
            assert not any(ch.isdigit() for ch in token) or "N" in token


def _mail_db():
    """Flows imitating the paper's port-25 mix (Tab. 6)."""
    database = FlowDatabase()
    specs = [
        # (client, fqdn, n_flows)
        (1, "smtp1.mail.example.com", 5),
        (2, "smtp2.mail.example.com", 4),
        (3, "smtp7.provider.net", 3),
        (5, "smtp4.outbound.example.com", 2),
        (4, "mx1.aspmx.google.com", 2),
        (1, "mailin.fastmail.com", 2),
    ]
    for client, fqdn, n in specs:
        for i in range(n):
            database.add(
                FlowRecord(
                    fid=FiveTuple(client, 500 + client, 40000 + i, 25,
                                  TransportProto.TCP),
                    start=float(i),
                    fqdn=fqdn,
                )
            )
    return database


class TestServiceTagExtractor:
    def test_top_tag_is_smtp(self):
        extractor = ServiceTagExtractor(_mail_db())
        tags = extractor.extract(25, k=5)
        assert tags[0].token == "smtpN"
        tokens = [t.token for t in tags]
        assert "mail" in tokens

    def test_k_limits_output(self):
        extractor = ServiceTagExtractor(_mail_db())
        assert len(extractor.extract(25, k=2)) == 2

    def test_empty_port(self):
        extractor = ServiceTagExtractor(_mail_db())
        assert extractor.extract(9999) == []

    def test_log_score_damps_heavy_client(self):
        """One client with 1000 flows must not beat 20 clients with 2 each."""
        database = FlowDatabase()
        for i in range(1000):
            database.add(
                FlowRecord(
                    fid=FiveTuple(1, 500, 1000 + i, 8000, TransportProto.TCP),
                    start=float(i),
                    fqdn="spam.heavy.example.com",
                )
            )
        for client in range(2, 22):
            for i in range(2):
                database.add(
                    FlowRecord(
                        fid=FiveTuple(client, 501, 2000 + i, 8000,
                                      TransportProto.TCP),
                        start=float(i),
                        fqdn="api.popular.example.org",
                    )
                )
        log_tags = ServiceTagExtractor(database, use_log_score=True).extract(8000)
        raw_tags = ServiceTagExtractor(database, use_log_score=False).extract(8000)
        assert log_tags[0].token == "api"        # 20 * log(3) > log(1001)
        # raw count 1000 wins for the heavy client's tokens
        assert raw_tags[0].token in {"spam", "heavy"}

    def test_score_formula_matches_eq1(self):
        database = FlowDatabase()
        # client 1: 3 flows with token 'x'; client 2: 1 flow with 'x'.
        for client, n in ((1, 3), (2, 1)):
            for i in range(n):
                database.add(
                    FlowRecord(
                        fid=FiveTuple(client, 500, 3000 + i, 4000,
                                      TransportProto.TCP),
                        start=float(i),
                        fqdn="x.service.example.com",
                    )
                )
        tags = ServiceTagExtractor(database).extract(4000)
        x_tag = next(t for t in tags if t.token == "x")
        assert x_tag.score == pytest.approx(math.log(4) + math.log(2))
        assert x_tag.client_count == 2
        assert x_tag.flow_count == 4

    def test_untagged_flows_ignored(self):
        database = FlowDatabase()
        database.add(
            FlowRecord(
                fid=FiveTuple(1, 2, 3, 4000, TransportProto.TCP),
                start=0.0,
                fqdn=None,
            )
        )
        assert ServiceTagExtractor(database).extract(4000) == []

    def test_extract_all_ports(self):
        extractor = ServiceTagExtractor(_mail_db())
        out = extractor.extract_all_ports(k=3, min_flows=5)
        assert 25 in out
        assert out[25][0].token == "smtpN"

    def test_top_fraction_skewed(self):
        extractor = ServiceTagExtractor(_mail_db())
        top = extractor.top_fraction(25, fraction=0.5)
        everything = extractor.extract(25, k=100)
        assert 0 < len(top) < len(everything)

    def test_top_fraction_validates(self):
        extractor = ServiceTagExtractor(_mail_db())
        with pytest.raises(ValueError):
            extractor.top_fraction(25, fraction=0.0)

    def test_top_fraction_empty_port(self):
        extractor = ServiceTagExtractor(_mail_db())
        assert extractor.top_fraction(9999) == []
