"""Differential/property tests: columnar FlowDatabase vs the seed store.

The columnar engine (:mod:`repro.analytics.database`) must answer every
query identically to the retained seed implementation
(:mod:`repro.analytics.database_reference`) on randomized flow sets —
including untagged flows, empty-string labels, case-folded FQDNs, and
both ingestion paths (per-record ``add`` and binary ``ingest_batch``),
with and without numpy.
"""

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analytics.database as database_module
from repro.analytics.database import FlowDatabase
from repro.analytics.database_reference import FlowDatabase as ReferenceDatabase
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.sniffer.eventcodec import encode_events

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u48 = st.integers(min_value=0, max_value=0xFFFFFFFFFFFF)
# Bounded trace times: the gap-filled bin series ranges over
# (max - min) / bin_seconds entries, so keep the window day-sized.
finite = st.floats(
    allow_nan=False, allow_infinity=False, width=64,
    min_value=-3600.0, max_value=86400.0,
)
# Small pools force collisions: shared labels (mixed case), shared
# servers/clients/ports — the interesting regime for interning/indexes.
labels = st.none() | st.sampled_from([
    "", "www.google.com", "WWW.Google.COM", "mail.google.com",
    "cdn1.fbcdn.net", "CDN1.fbcdn.net", "static.bbc.co.uk",
    "a.b.c.example.org", "tracker.appspot.com", "x",
]) | st.text(min_size=1, max_size=20)
# Mostly a small colliding pool, plus high-bit addresses (>= 2^31) to
# catch signed-overflow bugs in packed-key numpy paths.
addresses = st.integers(min_value=1, max_value=40) | st.sampled_from(
    [0x80000000, 0xDEADBEEF, 0xFFFFFFFF]
)
ports = st.sampled_from([80, 443, 8080, 51413])

flows = st.builds(
    FlowRecord,
    fid=st.builds(
        FiveTuple,
        client_ip=addresses,
        server_ip=addresses,
        src_port=u16,
        dst_port=ports,
        proto=st.sampled_from(TransportProto),
    ),
    start=finite,
    end=finite,
    protocol=st.sampled_from(Protocol),
    bytes_up=u48,
    bytes_down=u48,
    packets=u32,
    fqdn=labels,
    cert_name=st.none() | st.sampled_from(["cert.example.com"]),
    true_fqdn=st.none() | st.sampled_from(["true.example.com"]),
)

flow_lists = st.lists(flows, min_size=0, max_size=60)


@contextmanager
def _without_numpy():
    saved = database_module._np
    database_module._np = None
    try:
        yield
    finally:
        database_module._np = saved


def _assert_equivalent(db: FlowDatabase, ref: ReferenceDatabase) -> None:
    assert len(db) == len(ref)
    assert db.tagged_count == ref.tagged_count
    assert db.time_span() == ref.time_span()
    assert db.count_by_protocol() == ref.count_by_protocol()
    assert db.fqdns() == ref.fqdns()
    assert db.slds() == ref.slds()
    assert db.servers() == ref.servers()
    assert db.ports() == ref.ports()
    assert list(db) == list(ref)
    for fqdn in [*ref.fqdns(), "missing.example.net", ""]:
        assert db.query_by_fqdn(fqdn) == ref.query_by_fqdn(fqdn)
        assert db.query_by_fqdn(fqdn.upper()) == ref.query_by_fqdn(
            fqdn.upper()
        )
        assert db.servers_for_fqdn(fqdn) == ref.servers_for_fqdn(fqdn)
    for sld in [*ref.slds(), "missing.example.net"]:
        assert db.query_by_domain(sld) == ref.query_by_domain(sld)
        assert db.servers_for_domain(sld) == ref.servers_for_domain(sld)
        assert db.fqdns_for_domain(sld) == ref.fqdns_for_domain(sld)
    servers = ref.servers()
    probe_sets = [servers, servers[:3] * 2, [999999], []]
    for probe in probe_sets:
        assert db.query_by_servers(probe) == ref.query_by_servers(probe)
        assert db.fqdns_for_servers(probe) == ref.fqdns_for_servers(probe)
    for port in [*ref.ports(), 1]:
        assert db.query_by_port(port) == ref.query_by_port(port)


class TestObjectIngestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(flow_lists)
    def test_add_path_matches_reference(self, flow_list):
        ref = ReferenceDatabase.from_flows(flow_list)
        _assert_equivalent(FlowDatabase.from_flows(flow_list), ref)

    @settings(max_examples=25, deadline=None)
    @given(flow_lists)
    def test_add_path_matches_reference_without_numpy(self, flow_list):
        ref = ReferenceDatabase.from_flows(flow_list)
        with _without_numpy():
            db = FlowDatabase.from_flows(flow_list)
            _assert_equivalent(db, ref)


class TestBatchIngestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(flow_lists, st.integers(min_value=1, max_value=17))
    def test_batch_path_matches_reference(self, flow_list, batch_size):
        ref = ReferenceDatabase.from_flows(flow_list)
        payloads = [
            encode_events(flow_list[pos:pos + batch_size])
            for pos in range(0, len(flow_list), batch_size)
        ]
        _assert_equivalent(FlowDatabase.from_batches(payloads), ref)

    @settings(max_examples=25, deadline=None)
    @given(flow_lists, st.integers(min_value=1, max_value=17))
    def test_batch_path_matches_reference_without_numpy(
        self, flow_list, batch_size
    ):
        ref = ReferenceDatabase.from_flows(flow_list)
        payloads = [
            encode_events(flow_list[pos:pos + batch_size])
            for pos in range(0, len(flow_list), batch_size)
        ]
        with _without_numpy():
            db = FlowDatabase.from_batches(payloads)
            _assert_equivalent(db, ref)

    @settings(max_examples=20, deadline=None)
    @given(flow_lists)
    def test_mixed_add_and_batch(self, flow_list):
        half = len(flow_list) // 2
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list[:half])
        if flow_list[half:]:
            db.ingest_batch(encode_events(flow_list[half:]))
        _assert_equivalent(db, ref)


class TestGroupedAggregations:
    """The grouped methods the vectorized analytics ride on, checked
    against brute-force recomputation from the reference store."""

    @settings(max_examples=40, deadline=None)
    @given(flow_lists, st.floats(min_value=30.0, max_value=7200.0))
    def test_fqdn_server_counts(self, flow_list, bin_seconds):
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list)
        expected: dict[tuple[str, int], int] = {}
        for flow in ref:
            if flow.fqdn:
                key = (flow.fqdn.lower(), flow.fid.server_ip)
                expected[key] = expected.get(key, 0) + 1
        got = {
            (db.fqdn_label(fqdn_id), server): count
            for fqdn_id, server, count in db.fqdn_server_counts()
        }
        assert got == expected

    @settings(max_examples=40, deadline=None)
    @given(flow_lists, st.floats(min_value=30.0, max_value=7200.0))
    def test_unique_servers_per_bin(self, flow_list, bin_seconds):
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list)
        for sld in ref.slds():
            sets: dict[int, set[int]] = {}
            for flow in ref.query_by_domain(sld):
                sets.setdefault(
                    int(flow.start // bin_seconds), set()
                ).add(flow.fid.server_ip)
            lo, hi = min(sets), max(sets)
            expected = [
                (index * bin_seconds, len(sets.get(index, ())))
                for index in range(lo, hi + 1)
            ]
            assert db.unique_servers_per_bin(sld, bin_seconds) == expected

    @settings(max_examples=40, deadline=None)
    @given(flow_lists)
    def test_fqdn_flow_byte_totals_and_client_counts(self, flow_list):
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list)
        totals: dict[str, list[int]] = {}
        clients: dict[tuple[str, int], int] = {}
        for flow in ref:
            if not flow.fqdn:
                continue
            fqdn = flow.fqdn.lower()
            bucket = totals.setdefault(fqdn, [0, 0, 0])
            bucket[0] += 1
            bucket[1] += flow.bytes_up
            bucket[2] += flow.bytes_down
            key = (fqdn, flow.fid.client_ip)
            clients[key] = clients.get(key, 0) + 1
        assert {
            db.fqdn_label(fqdn_id): [flows, up, down]
            for fqdn_id, flows, up, down in db.fqdn_flow_byte_totals()
        } == totals
        assert {
            (db.fqdn_label(fqdn_id), client): count
            for fqdn_id, client, count in db.fqdn_client_counts()
        } == clients

    @settings(max_examples=40, deadline=None)
    @given(flow_lists)
    def test_sld_flow_stats_and_server_counts(self, flow_list):
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list)
        servers = ref.servers()
        rows = db.rows_for_servers(servers)
        flow_counts: dict[str, int] = {}
        fqdn_sets: dict[str, set[str]] = {}
        server_counts: dict[int, int] = {}
        for flow in ref.query_by_servers(servers):
            server_counts[flow.fid.server_ip] = (
                server_counts.get(flow.fid.server_ip, 0) + 1
            )
            if not flow.fqdn:
                continue
            from repro.dns.name import second_level_domain

            sld = second_level_domain(flow.fqdn)
            flow_counts[sld] = flow_counts.get(sld, 0) + 1
            fqdn_sets.setdefault(sld, set()).add(flow.fqdn.lower())
        assert {
            db.sld_label(sld_id): (flows, distinct)
            for sld_id, flows, distinct in db.sld_flow_stats(rows)
        } == {
            sld: (count, len(fqdn_sets[sld]))
            for sld, count in flow_counts.items()
        }
        assert db.server_flow_counts(rows) == server_counts

    @settings(max_examples=40, deadline=None)
    @given(flow_lists, st.floats(min_value=30.0, max_value=7200.0))
    def test_bin_pairs_and_first_seen(self, flow_list, bin_seconds):
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list)
        pairs = set()
        first: dict[str, float] = {}
        for flow in ref:
            if not flow.fqdn:
                continue
            fqdn = flow.fqdn.lower()
            pairs.add((fqdn, int(flow.start // bin_seconds)))
            if fqdn not in first or flow.start < first[fqdn]:
                first[fqdn] = flow.start
        assert {
            (db.fqdn_label(fqdn_id), bin_index)
            for fqdn_id, bin_index in db.fqdn_bin_pairs(bin_seconds)
        } == pairs
        assert {
            db.fqdn_label(fqdn_id): start
            for fqdn_id, start in db.fqdn_first_seen().items()
        } == first

    @settings(max_examples=30, deadline=None)
    @given(flow_lists, st.floats(min_value=30.0, max_value=7200.0))
    def test_server_fqdn_bin_triples(self, flow_list, bin_seconds):
        ref = ReferenceDatabase.from_flows(flow_list)
        db = FlowDatabase.from_flows(flow_list)
        expected = {
            (
                flow.fid.server_ip,
                flow.fqdn.lower(),
                int(flow.start // bin_seconds),
            )
            for flow in ref
            if flow.fqdn
        }
        got = {
            (server, db.fqdn_label(fqdn_id), bin_index)
            for server, fqdn_id, bin_index in db.server_fqdn_bin_triples(
                bin_seconds
            )
        }
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(flow_lists)
    def test_grouped_aggregations_without_numpy(self, flow_list):
        db_np = FlowDatabase.from_flows(flow_list)
        with _without_numpy():
            db_py = FlowDatabase.from_flows(flow_list)
            assert sorted(db_py.fqdn_server_counts()) == sorted(
                db_np.fqdn_server_counts()
            )
            assert sorted(db_py.fqdn_client_counts()) == sorted(
                db_np.fqdn_client_counts()
            )
            assert sorted(db_py.fqdn_flow_byte_totals()) == sorted(
                db_np.fqdn_flow_byte_totals()
            )
            assert db_py.fqdn_first_seen() == db_np.fqdn_first_seen()
            assert db_py.fqdn_bin_pairs(60.0) == db_np.fqdn_bin_pairs(60.0)
            for sld in db_np.slds():
                assert db_py.unique_servers_per_bin(
                    sld, 600.0
                ) == db_np.unique_servers_per_bin(sld, 600.0)
