"""Tests for the labeled-flows database."""

import pytest

from repro.analytics.database import FlowDatabase
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto

C1, C2 = 101, 102
S1, S2, S3 = 201, 202, 203


def _flow(client=C1, server=S1, dport=80, fqdn=None, start=0.0, end=None,
          proto=Protocol.HTTP, up=100, down=1000):
    return FlowRecord(
        fid=FiveTuple(client, server, 40000, dport, TransportProto.TCP),
        start=start,
        end=start + 1.0 if end is None else end,
        protocol=proto,
        bytes_up=up,
        bytes_down=down,
        fqdn=fqdn,
    )


@pytest.fixture
def db():
    database = FlowDatabase()
    database.add_all(
        [
            _flow(fqdn="www.google.com", server=S1, start=0.0),
            _flow(fqdn="mail.google.com", server=S2, start=5.0),
            _flow(fqdn="www.zynga.com", server=S3, dport=443, start=10.0,
                  proto=Protocol.TLS),
            _flow(fqdn="farm.zynga.com", server=S3, dport=443, start=12.0,
                  client=C2, proto=Protocol.TLS),
            _flow(fqdn=None, server=S1, dport=51413, start=20.0,
                  proto=Protocol.P2P),
        ]
    )
    return database


class TestQueries:
    def test_by_fqdn(self, db):
        assert len(db.query_by_fqdn("www.google.com")) == 1
        assert len(db.query_by_fqdn("WWW.GOOGLE.COM")) == 1
        assert db.query_by_fqdn("nothing.com") == []

    def test_by_domain(self, db):
        google = db.query_by_domain("google.com")
        assert {f.fqdn for f in google} == {"www.google.com", "mail.google.com"}
        zynga = db.query_by_domain("zynga.com")
        assert len(zynga) == 2

    def test_by_servers(self, db):
        assert len(db.query_by_servers([S3])) == 2
        assert len(db.query_by_servers([S1, S2])) == 3  # incl. untagged
        assert db.query_by_servers([999]) == []

    def test_by_port(self, db):
        assert len(db.query_by_port(443)) == 2
        assert len(db.query_by_port(80)) == 2
        assert db.query_by_port(8080) == []


class TestAggregates:
    def test_fqdns_slds_servers_ports(self, db):
        assert set(db.fqdns()) == {
            "www.google.com", "mail.google.com", "www.zynga.com",
            "farm.zynga.com",
        }
        assert set(db.slds()) == {"google.com", "zynga.com"}
        assert set(db.servers()) == {S1, S2, S3}
        assert set(db.ports()) == {80, 443, 51413}

    def test_servers_for_fqdn_and_domain(self, db):
        assert db.servers_for_fqdn("www.zynga.com") == {S3}
        assert db.servers_for_domain("google.com") == {S1, S2}
        assert db.servers_for_domain("missing.com") == set()

    def test_fqdns_for_servers(self, db):
        assert db.fqdns_for_servers([S3]) == {"www.zynga.com", "farm.zynga.com"}
        # untagged flow on S1 contributes nothing
        assert db.fqdns_for_servers([S1]) == {"www.google.com"}

    def test_fqdns_for_domain(self, db):
        assert db.fqdns_for_domain("zynga.com") == {
            "www.zynga.com", "farm.zynga.com",
        }

    def test_counts(self, db):
        assert len(db) == 5
        assert db.tagged_count == 4
        by_proto = db.count_by_protocol()
        assert by_proto[Protocol.HTTP] == 2
        assert by_proto[Protocol.TLS] == 2
        assert by_proto[Protocol.P2P] == 1

    def test_time_span(self, db):
        start, end = db.time_span()
        assert start == 0.0
        assert end == 21.0

    def test_time_span_empty(self):
        assert FlowDatabase().time_span() == (0.0, 0.0)

    def test_iteration(self, db):
        assert sum(1 for _ in db) == 5

    def test_from_flows_classmethod(self):
        database = FlowDatabase.from_flows([_flow(fqdn="a.b.com")])
        assert len(database) == 1
        assert database.tagged_count == 1
