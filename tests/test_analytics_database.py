"""Tests for the labeled-flows database (columnar engine)."""

import pytest

from repro.analytics.database import FlowDatabase
from repro.analytics.database_reference import (
    FlowDatabase as ReferenceDatabase,
)
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.sniffer.eventcodec import encode_events

C1, C2 = 101, 102
S1, S2, S3 = 201, 202, 203


def _flow(client=C1, server=S1, dport=80, fqdn=None, start=0.0, end=None,
          proto=Protocol.HTTP, up=100, down=1000):
    return FlowRecord(
        fid=FiveTuple(client, server, 40000, dport, TransportProto.TCP),
        start=start,
        end=start + 1.0 if end is None else end,
        protocol=proto,
        bytes_up=up,
        bytes_down=down,
        fqdn=fqdn,
    )


@pytest.fixture
def db():
    database = FlowDatabase()
    database.add_all(
        [
            _flow(fqdn="www.google.com", server=S1, start=0.0),
            _flow(fqdn="mail.google.com", server=S2, start=5.0),
            _flow(fqdn="www.zynga.com", server=S3, dport=443, start=10.0,
                  proto=Protocol.TLS),
            _flow(fqdn="farm.zynga.com", server=S3, dport=443, start=12.0,
                  client=C2, proto=Protocol.TLS),
            _flow(fqdn=None, server=S1, dport=51413, start=20.0,
                  proto=Protocol.P2P),
        ]
    )
    return database


class TestQueries:
    def test_by_fqdn(self, db):
        assert len(db.query_by_fqdn("www.google.com")) == 1
        assert len(db.query_by_fqdn("WWW.GOOGLE.COM")) == 1
        assert db.query_by_fqdn("nothing.com") == []

    def test_by_domain(self, db):
        google = db.query_by_domain("google.com")
        assert {f.fqdn for f in google} == {"www.google.com", "mail.google.com"}
        zynga = db.query_by_domain("zynga.com")
        assert len(zynga) == 2

    def test_by_servers(self, db):
        assert len(db.query_by_servers([S3])) == 2
        assert len(db.query_by_servers([S1, S2])) == 3  # incl. untagged
        assert db.query_by_servers([999]) == []

    def test_by_port(self, db):
        assert len(db.query_by_port(443)) == 2
        assert len(db.query_by_port(80)) == 2
        assert db.query_by_port(8080) == []


class TestAggregates:
    def test_fqdns_slds_servers_ports(self, db):
        assert set(db.fqdns()) == {
            "www.google.com", "mail.google.com", "www.zynga.com",
            "farm.zynga.com",
        }
        assert set(db.slds()) == {"google.com", "zynga.com"}
        assert set(db.servers()) == {S1, S2, S3}
        assert set(db.ports()) == {80, 443, 51413}

    def test_servers_for_fqdn_and_domain(self, db):
        assert db.servers_for_fqdn("www.zynga.com") == {S3}
        assert db.servers_for_domain("google.com") == {S1, S2}
        assert db.servers_for_domain("missing.com") == set()

    def test_fqdns_for_servers(self, db):
        assert db.fqdns_for_servers([S3]) == {"www.zynga.com", "farm.zynga.com"}
        # untagged flow on S1 contributes nothing
        assert db.fqdns_for_servers([S1]) == {"www.google.com"}

    def test_fqdns_for_domain(self, db):
        assert db.fqdns_for_domain("zynga.com") == {
            "www.zynga.com", "farm.zynga.com",
        }

    def test_counts(self, db):
        assert len(db) == 5
        assert db.tagged_count == 4
        by_proto = db.count_by_protocol()
        assert by_proto[Protocol.HTTP] == 2
        assert by_proto[Protocol.TLS] == 2
        assert by_proto[Protocol.P2P] == 1

    def test_time_span(self, db):
        start, end = db.time_span()
        assert start == 0.0
        assert end == 21.0

    def test_time_span_empty(self):
        assert FlowDatabase().time_span() == (0.0, 0.0)

    def test_iteration(self, db):
        assert sum(1 for _ in db) == 5

    def test_from_flows_classmethod(self):
        database = FlowDatabase.from_flows([_flow(fqdn="a.b.com")])
        assert len(database) == 1
        assert database.tagged_count == 1


class TestServerDedupe:
    """Regression: duplicate entries in the ``servers`` argument must not
    duplicate result rows (seed bug, fixed in both stores)."""

    @pytest.mark.parametrize("store", [FlowDatabase, ReferenceDatabase])
    def test_duplicate_servers_no_duplicate_rows(self, store):
        database = store.from_flows(
            [_flow(fqdn="www.google.com", server=S1),
             _flow(fqdn="mail.google.com", server=S2)]
        )
        rows = database.query_by_servers([S1, S1, S2, S1])
        assert len(rows) == 2
        assert [f.fqdn for f in rows] == [
            "www.google.com", "mail.google.com",
        ]


class TestBatchIngest:
    def _flows(self):
        return [
            _flow(fqdn="www.google.com", server=S1, start=0.0),
            _flow(fqdn=None, server=S2, start=5.0, proto=Protocol.P2P),
            _flow(fqdn="WWW.Google.COM", server=S3, start=9.0),
        ]

    def test_ingest_batch_matches_object_path(self):
        flows = self._flows()
        via_objects = FlowDatabase.from_flows(flows)
        via_batch = FlowDatabase.from_batches([encode_events(flows)])
        assert list(via_batch) == list(via_objects)
        assert via_batch.tagged_count == 2
        assert via_batch.time_span() == (0.0, 10.0)
        assert via_batch.fqdns() == ["www.google.com"]
        assert via_batch.servers_for_fqdn("www.google.com") == {S1, S3}

    def test_ingest_batch_materializes_lazily(self):
        database = FlowDatabase()
        assert database.ingest_batch(encode_events(self._flows())) == 3
        assert database._records == [None, None, None]
        record = database.query_by_fqdn("www.google.com")[0]
        assert record.fqdn == "www.google.com"
        # materialized once, cached
        assert database.query_by_fqdn("www.google.com")[0] is record

    def test_ingest_batch_ignores_dns_events(self):
        from repro.net.flow import DnsObservation

        events = [
            DnsObservation(timestamp=1.0, client_ip=C1,
                           fqdn="www.google.com", answers=[S1]),
            self._flows()[0],
        ]
        database = FlowDatabase()
        assert database.ingest_batch(encode_events(events)) == 1
        assert len(database) == 1

    def test_empty_batch(self):
        database = FlowDatabase()
        assert database.ingest_batch(encode_events([])) == 0
        assert len(database) == 0


class TestIncrementalStats:
    """tagged_count / time_span / protocol counts are maintained during
    ingestion, not recomputed by scans on access."""

    def test_counters_track_adds(self):
        database = FlowDatabase()
        assert database.time_span() == (0.0, 0.0)
        database.add(_flow(fqdn="a.example.com", start=10.0))
        assert (database.tagged_count, database.time_span()) == (
            1, (10.0, 11.0)
        )
        database.add(_flow(fqdn=None, start=2.0, proto=Protocol.P2P))
        assert (database.tagged_count, database.time_span()) == (
            2 - 1, (2.0, 11.0)
        )
        database.ingest_batch(
            encode_events([_flow(fqdn="b.example.com", start=50.0)])
        )
        assert database.tagged_count == 2
        assert database.time_span() == (2.0, 51.0)
        assert database.count_by_protocol() == {
            Protocol.HTTP: 2, Protocol.P2P: 1,
        }


class TestNumpyPathEdgeCases:
    """Regressions for the vectorized grouping paths."""

    def test_high_bit_server_addresses_in_triples(self):
        # serverIPs >= 2^31 must not wrap negative in the packed-key
        # dedupe (signed-shift overflow regression).
        server = 0xDEADBEEF
        database = FlowDatabase.from_flows(
            [_flow(fqdn="www.google.com", server=server, start=100.0)]
        )
        assert database.server_fqdn_bin_triples(600.0) == [
            (server, 0, 0)
        ]
        assert database.fqdn_server_counts() == [(0, server, 1)]

    def test_grouped_methods_on_untagged_only_rows(self):
        # A row set with no labeled flows must return empty results,
        # not crash, on both backends.
        database = FlowDatabase.from_flows(
            [_flow(fqdn=None, server=S1, dport=51413,
                   proto=Protocol.P2P)]
        )
        rows = database.rows_for_port(51413)
        assert len(rows) == 1
        assert database.fqdn_first_seen(rows) == {}
        assert database.fqdn_bin_pairs(600.0, rows) == []
        assert database.server_fqdn_bin_triples(600.0, rows) == []
        assert database.fqdn_server_counts(rows) == []
        assert database.fqdn_flow_byte_totals(rows) == []


class TestIngestAtomicity:
    def test_truncated_string_block_rejected_without_mutation(self):
        from repro.sniffer.eventcodec import (
            BLOCK_LEN, CodecError, HEADER, MAGIC, VERSION,
        )

        good = encode_events(
            [_flow(fqdn="www.google.com"), _flow(fqdn="mail.google.com")]
        )
        # Truncate the flow_str block's payload but fix up every block
        # length so BatchView still accepts the frame.
        pos = HEADER.size
        blocks = []
        buf = memoryview(good)
        for _ in range(8):
            (length,) = BLOCK_LEN.unpack_from(buf, pos)
            pos += BLOCK_LEN.size
            blocks.append(bytes(buf[pos:pos + length]))
            pos += length
        blocks[3] = blocks[3][:-4]  # chop the tail of flow_str
        bad = HEADER.pack(MAGIC, VERSION, 2, 0, 2)
        for block in blocks:
            bad += BLOCK_LEN.pack(len(block)) + block
        database = FlowDatabase()
        database.add(_flow(fqdn="seed.example.com"))
        with pytest.raises(CodecError):
            database.ingest_batch(bad)
        # the failed batch left nothing behind
        assert len(database) == 1
        assert len(database.columns) == 1
        assert database.fqdns() == ["seed.example.com"]
        # and the store still ingests good batches afterwards
        assert database.ingest_batch(good) == 2
        assert len(database) == 3

    def test_out_of_range_protocol_rejected_without_mutation(self):
        from repro.sniffer.eventcodec import CodecError, FLOW_HOT

        good = encode_events([_flow(fqdn="www.google.com")])
        # Locate the flow_hot block (5th length-prefixed region) and
        # corrupt the protocol byte of the first flow.
        from repro.sniffer.eventcodec import BLOCK_LEN, HEADER

        pos = HEADER.size
        for _ in range(1):  # flags block
            (length,) = BLOCK_LEN.unpack_from(good, pos)
            pos += BLOCK_LEN.size + length
        (length,) = BLOCK_LEN.unpack_from(good, pos)
        assert length == FLOW_HOT.size
        proto_offset = pos + BLOCK_LEN.size + FLOW_HOT.size - 1
        bad = bytearray(good)
        bad[proto_offset] = 250
        database = FlowDatabase()
        with pytest.raises(CodecError):
            database.ingest_batch(bytes(bad))
        assert len(database) == 0
        assert len(database.columns) == 0
        assert database.ingest_batch(good) == 1


class TestAddAtomicity:
    def test_out_of_range_record_rejected_without_mutation(self):
        database = FlowDatabase()
        database.add(_flow(fqdn="a.example.com"))
        bad = _flow(fqdn="b.example.com")
        bad.packets = 1 << 40  # exceeds the u32 column range
        with pytest.raises(ValueError):
            database.add(bad)
        # nothing of the rejected record stuck anywhere
        assert len(database) == 1
        assert len(database.columns) == 1
        assert len(database.columns.client_ip) == 1
        assert database.fqdns() == ["a.example.com"]
        database.add(_flow(fqdn="c.example.com", start=5.0))
        assert [f.fqdn for f in database] == [
            "a.example.com", "c.example.com",
        ]
        assert database.query_by_fqdn("c.example.com")[0].start == 5.0
