"""Tests for the figure analytics: tangle CDFs, temporal series, birth
processes, domain trees, trackers, word cloud, delays."""

import pytest

from repro.analytics.birth import BirthProcess, EntityBirthTracker
from repro.analytics.database import FlowDatabase
from repro.analytics.delays import analyze_delays
from repro.analytics.domain_tree import build_domain_tree
from repro.analytics.tangle import (
    Cdf,
    fanin_distribution,
    fanout_distribution,
    single_mapping_fractions,
)
from repro.analytics.temporal import (
    TimeBins,
    dns_response_rate,
    fqdns_per_cdn_series,
    servers_per_domain_series,
    total_fqdns_per_cdn,
)
from repro.analytics.trackers import (
    TrackerActivityAnalysis,
    service_breakdown,
)
from repro.analytics.wordcloud import build_word_cloud, render_word_cloud
from repro.net.flow import DnsObservation, FiveTuple, FlowRecord, TransportProto
from repro.net.ip import IPv4Network, ip_from_str
from repro.orgdb.ipdb import IpOrganizationDb


def _flow(client, server, fqdn, start=0.0, dport=80, up=10, down=100):
    return FlowRecord(
        fid=FiveTuple(client, server, 40000, dport, TransportProto.TCP),
        start=start,
        end=start + 1,
        fqdn=fqdn,
        bytes_up=up,
        bytes_down=down,
    )


class TestCdf:
    def test_at_and_percentile(self):
        cdf = Cdf.from_counts([1, 1, 1, 2, 5])
        assert cdf.at(1) == pytest.approx(0.6)
        assert cdf.at(2) == pytest.approx(0.8)
        assert cdf.at(10) == 1.0
        assert cdf.percentile(0.6) == 1
        assert cdf.percentile(1.0) == 5
        assert cdf.max == 5

    def test_empty(self):
        cdf = Cdf.from_counts([])
        assert cdf.at(1) == 0.0
        assert cdf.max == 0
        with pytest.raises(ValueError):
            cdf.percentile(0.5)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            Cdf.from_counts([1]).percentile(0)

    def test_points_monotone(self):
        cdf = Cdf.from_counts([3, 1, 4, 1, 5])
        points = cdf.points()
        values = [p[1] for p in points]
        assert values == sorted(values)
        assert points[-1][1] == 1.0


class TestTangle:
    def test_fanout_fanin(self):
        db = FlowDatabase()
        db.add_all(
            [
                _flow(1, 100, "a.example.com"),
                _flow(1, 101, "a.example.com"),
                _flow(1, 100, "b.example.com"),
                _flow(2, 102, "c.example.com"),
            ]
        )
        fanout = fanout_distribution(db)
        assert fanout.at(1) == pytest.approx(2 / 3)  # b, c on one server
        fanin = fanin_distribution(db)
        assert fanin.at(1) == pytest.approx(2 / 3)   # 101,102 serve one fqdn
        single_fqdn, single_server = single_mapping_fractions(db)
        assert single_fqdn == pytest.approx(2 / 3)
        assert single_server == pytest.approx(2 / 3)


class TestTimeBins:
    def test_series_fills_gaps(self):
        bins = TimeBins(bin_seconds=10.0)
        bins.add(5.0)
        bins.add(35.0)
        series = bins.series()
        assert series == [(0.0, 1), (10.0, 0), (20.0, 0), (30.0, 1)]

    def test_peak(self):
        bins = TimeBins(bin_seconds=10.0)
        for t in (5.0, 6.0, 25.0):
            bins.add(t)
        assert bins.peak() == (0.0, 2)

    def test_empty(self):
        bins = TimeBins(bin_seconds=10.0)
        assert bins.series() == []
        assert bins.peak() == (0.0, 0)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            TimeBins(bin_seconds=0)


class TestTemporalSeries:
    def _db_and_ipdb(self):
        db = FlowDatabase()
        db.add_all(
            [
                _flow(1, ip_from_str("2.16.0.1"), "s.youtube.com", 0.0),
                _flow(1, ip_from_str("2.16.0.2"), "v.youtube.com", 100.0),
                _flow(2, ip_from_str("2.16.0.1"), "s.youtube.com", 700.0),
                _flow(2, ip_from_str("54.0.0.1"), "img.twitter.com", 650.0),
            ]
        )
        ipdb = IpOrganizationDb()
        ipdb.add_network(IPv4Network.parse("2.16.0.0/24"), "akamai")
        ipdb.add_network(IPv4Network.parse("54.0.0.0/24"), "amazon")
        return db, ipdb

    def test_servers_per_domain(self):
        db, _ = self._db_and_ipdb()
        series = servers_per_domain_series(db, ["youtube.com"], 600.0)
        assert series["youtube.com"] == [(0.0, 2), (600.0, 1)]

    def test_missing_domain_empty(self):
        db, _ = self._db_and_ipdb()
        assert servers_per_domain_series(db, ["nope.com"])["nope.com"] == []

    def test_fqdns_per_cdn(self):
        db, ipdb = self._db_and_ipdb()
        series = fqdns_per_cdn_series(db, ipdb, ["akamai", "amazon"], 600.0)
        assert series["akamai"] == [(0.0, 2), (600.0, 1)]
        assert series["amazon"] == [(600.0, 1)]

    def test_total_fqdns_per_cdn(self):
        db, ipdb = self._db_and_ipdb()
        assert total_fqdns_per_cdn(db, ipdb, "akamai") == 2
        assert total_fqdns_per_cdn(db, ipdb, "edgecast") == 0

    def test_dns_response_rate(self):
        observations = [
            DnsObservation(t, 1, "x.com", [5]) for t in (0.0, 1.0, 700.0)
        ]
        bins = dns_response_rate(observations, 600.0)
        assert bins.series() == [(0.0, 2), (600.0, 1)]


class TestBirthProcess:
    def test_cumulative_unique(self):
        process = BirthProcess(bin_seconds=10.0)
        process.observe(1.0, "a")
        process.observe(2.0, "a")
        process.observe(11.0, "b")
        process.observe(25.0, "c")
        series = process.series()
        assert series == [(0.0, 1), (10.0, 2), (20.0, 3)]
        assert process.total == 3

    def test_growth_rate(self):
        process = BirthProcess(bin_seconds=1.0)
        for i in range(10):
            process.observe(float(i), f"key{i}")
        assert process.growth_rate(window_bins=5) == pytest.approx(1.0)

    def test_growth_rate_saturated(self):
        process = BirthProcess(bin_seconds=1.0)
        for i in range(10):
            process.observe(float(i), "same-key")
        assert process.growth_rate(window_bins=5) == 0.0

    def test_entity_tracker(self):
        tracker = EntityBirthTracker(bin_seconds=10.0)
        tracker.observe_all(
            [
                _flow(1, 100, "a.example.com", 0.0),
                _flow(1, 101, "b.example.com", 5.0),
                _flow(1, 100, "a.example.com", 15.0),
                _flow(1, 102, None, 20.0),
            ]
        )
        summary = tracker.summary()
        assert summary == {"fqdn": 2, "sld": 1, "server_ip": 3}


class TestDomainTree:
    def _db(self):
        db = FlowDatabase()
        akamai = ip_from_str("2.16.0.1")
        linkedin = ip_from_str("64.0.0.1")
        db.add_all(
            [
                _flow(1, akamai, "media4.linkedin.com", 0.0),
                _flow(1, akamai, "media5.linkedin.com", 1.0),
                _flow(2, linkedin, "www.linkedin.com", 2.0),
                _flow(2, linkedin, "platform.linkedin.com", 3.0),
            ]
        )
        ipdb = IpOrganizationDb()
        ipdb.add_network(IPv4Network.parse("2.16.0.0/24"), "akamai")
        ipdb.add_network(IPv4Network.parse("64.0.0.0/24"), "linkedin")
        return db, ipdb

    def test_token_merge_on_digits(self):
        db, ipdb = self._db()
        tree = build_domain_tree(db, "linkedin.com", ipdb)
        # media4 and media5 merge into one mediaN node with 2 flows.
        median = tree.root.children["mediaN"]
        assert median.flows == 2
        assert median.dominant_cdn() == "akamai"

    def test_self_grouping(self):
        db, ipdb = self._db()
        tree = build_domain_tree(db, "linkedin.com", ipdb)
        assert "Linkedin" in tree.groups
        assert tree.groups["Linkedin"].flows == 2
        assert tree.flow_share("akamai") == pytest.approx(0.5)

    def test_render_contains_groups(self):
        db, ipdb = self._db()
        tree = build_domain_tree(db, "linkedin.com", ipdb)
        text = tree.render()
        assert "linkedin.com" in text
        assert "akamai" in text
        assert "mediaN" in text


class TestTrackers:
    def _flows(self):
        hour = 3600.0
        return [
            _flow(1, 100, "open-tracker.appspot.com", 0 * hour),
            _flow(1, 100, "open-tracker.appspot.com", 8 * hour),
            _flow(1, 100, "open-tracker.appspot.com", 16 * hour),
            _flow(2, 100, "rlskingbt.appspot.com", 4 * hour),
            _flow(2, 100, "rlskingbt.appspot.com", 16 * hour),
            _flow(3, 101, "legit-app.appspot.com", 4 * hour, up=50, down=5000),
        ]

    def test_observe_and_timelines(self):
        analysis = TrackerActivityAnalysis(bin_seconds=4 * 3600.0)
        analysis.observe_all(self._flows())
        timelines = analysis.timelines()
        assert len(timelines) == 2  # legit-app is not a tracker
        assert timelines[0].service == "open-tracker.appspot.com"
        assert timelines[0].active_bins == {0, 2, 4}

    def test_always_on(self):
        analysis = TrackerActivityAnalysis(bin_seconds=4 * 3600.0)
        analysis.observe_all(self._flows())
        # open-tracker active in 3 of 5 bins (0..4): 60% < 90%
        assert analysis.always_on(threshold=0.9) == []
        assert len(analysis.always_on(threshold=0.5)) == 1

    def test_synchronized_groups(self):
        analysis = TrackerActivityAnalysis(bin_seconds=10.0)
        for t in (0.0, 20.0, 40.0):
            analysis.observe(_flow(1, 1, "sync1.tracker.example.com", t))
            analysis.observe(_flow(2, 1, "sync2.tracker.example.com", t))
        analysis.observe(_flow(3, 1, "solo.tracker.example.com", 100.0))
        groups = analysis.synchronized_groups()
        assert ["sync1.tracker.example.com", "sync2.tracker.example.com"] in groups

    def test_render(self):
        analysis = TrackerActivityAnalysis(bin_seconds=4 * 3600.0)
        analysis.observe_all(self._flows())
        text = analysis.render()
        assert "o" in text and "." in text

    def test_service_breakdown(self):
        db = FlowDatabase.from_flows(self._flows())
        trackers, general = service_breakdown(db, "appspot.com")
        assert trackers.services == 2
        assert trackers.flows == 5
        assert general.services == 1
        assert general.bytes_down == 5000


class TestWordCloud:
    def test_build_and_render(self):
        db = FlowDatabase()
        for i in range(5):
            db.add(_flow(i, 100, "open-tracker.appspot.com", float(i)))
        db.add(_flow(1, 100, "tiny-app.appspot.com", 9.0))
        db.add(_flow(1, 100, "www.other.com", 10.0))
        entries = build_word_cloud(db, "appspot.com")
        assert entries[0].word == "open-tracker"
        assert entries[0].bucket == 5
        assert len(entries) == 2  # other.com excluded
        text = render_word_cloud(entries)
        assert "open-tracker" in text

    def test_empty(self):
        assert build_word_cloud(FlowDatabase(), "appspot.com") == []

    def test_nested_service_names(self):
        db = FlowDatabase()
        db.add(_flow(1, 100, "deep.sub.myapp.appspot.com", 0.0))
        entries = build_word_cloud(db, "appspot.com")
        assert entries[0].word == "myapp"


class TestDelays:
    def test_first_flow_and_useless(self):
        observations = [
            DnsObservation(0.0, 1, "a.com", [100]),
            DnsObservation(10.0, 1, "b.com", [101]),   # never followed
            DnsObservation(20.0, 2, "a.com", [100]),
        ]
        flows = [
            _flow(1, 100, "a.com", 0.5),
            _flow(1, 100, "a.com", 3.0),
            _flow(2, 100, "a.com", 21.0),
        ]
        analysis = analyze_delays(observations, flows)
        assert analysis.total_responses == 3
        assert analysis.useless_fraction == pytest.approx(1 / 3)
        assert list(analysis.first_flow_delays) == [0.5, 1.0]
        assert list(analysis.any_flow_gaps) == [0.5, 1.0, 3.0]
        assert observations[1].useless

    def test_flow_before_response_ignored(self):
        observations = [DnsObservation(10.0, 1, "a.com", [100])]
        flows = [_flow(1, 100, "a.com", 5.0)]
        analysis = analyze_delays(observations, flows)
        assert analysis.useless_fraction == 1.0

    def test_latest_response_charged(self):
        observations = [
            DnsObservation(0.0, 1, "a.com", [100]),
            DnsObservation(100.0, 1, "a.com", [100]),
        ]
        flows = [_flow(1, 100, "a.com", 101.0)]
        analysis = analyze_delays(observations, flows)
        # Charged to the 100.0 response: gap 1.0, first response useless.
        assert list(analysis.any_flow_gaps) == [1.0]
        assert analysis.useless_fraction == pytest.approx(0.5)

    def test_horizon(self):
        observations = [DnsObservation(0.0, 1, "a.com", [100])]
        flows = [_flow(1, 100, "a.com", 5000.0)]
        analysis = analyze_delays(observations, flows)
        assert analysis.useless_fraction == 0.0
        analysis2 = analyze_delays(observations, flows, horizon=100.0)
        assert analysis2.useless_fraction == 1.0

    def test_cdf_helpers(self):
        observations = [
            DnsObservation(float(i), 1, "a.com", [100 + i]) for i in range(4)
        ]
        flows = [
            _flow(1, 100 + i, "a.com", float(i) + 0.5 * (i + 1))
            for i in range(4)
        ]
        analysis = analyze_delays(observations, flows)
        assert analysis.fraction_within(1.0) == pytest.approx(0.5)
        points = analysis.cdf_points("first", [0.5, 1.0, 2.0])
        assert points[-1][1] == 1.0
        assert analysis.percentile(50) <= analysis.percentile(100)

    def test_empty_inputs(self):
        analysis = analyze_delays([], [])
        assert analysis.useless_fraction == 0.0
        assert analysis.fraction_within(1.0) == 0.0
        assert analysis.cdf_points("first", [1.0]) == [(1.0, 0.0)]
        with pytest.raises(ValueError):
            analysis.percentile(50)


class TestAnomalyDetector:
    def test_alert_on_org_change(self):
        from repro.analytics.anomaly import MappingAnomalyDetector

        ipdb = IpOrganizationDb()
        ipdb.add_network(IPv4Network.parse("2.16.0.0/24"), "akamai")
        ipdb.add_network(IPv4Network.parse("66.6.0.0/24"), "evil")
        detector = MappingAnomalyDetector(ipdb=ipdb, min_history=2)
        legit = ip_from_str("2.16.0.1")
        evil = ip_from_str("66.6.0.6")
        for t in range(3):
            assert detector.observe(
                DnsObservation(float(t), 1, "bank.example.com", [legit])
            ) is None
        alert = detector.observe(
            DnsObservation(10.0, 1, "bank.example.com", [evil])
        )
        assert alert is not None
        assert alert.observed_org == "evil"
        assert "bank.example.com" in alert.describe()

    def test_no_alert_during_learning(self):
        from repro.analytics.anomaly import MappingAnomalyDetector

        detector = MappingAnomalyDetector(min_history=5)
        for t in range(4):
            assert detector.observe(
                DnsObservation(float(t), 1, "x.com", [t * 1000000])
            ) is None

    def test_same_prefix_no_alert(self):
        from repro.analytics.anomaly import MappingAnomalyDetector

        detector = MappingAnomalyDetector(min_history=1, prefix_bits=16)
        base = ip_from_str("2.16.0.1")
        neighbour = ip_from_str("2.16.99.99")
        detector.observe(DnsObservation(0.0, 1, "x.com", [base]))
        detector.observe(DnsObservation(1.0, 1, "x.com", [base]))
        assert detector.observe(
            DnsObservation(2.0, 1, "x.com", [neighbour])
        ) is None

    def test_learns_after_alert(self):
        from repro.analytics.anomaly import MappingAnomalyDetector

        detector = MappingAnomalyDetector(min_history=1, prefix_bits=16)
        a = ip_from_str("2.16.0.1")
        b = ip_from_str("99.0.0.1")
        detector.observe(DnsObservation(0.0, 1, "x.com", [a]))
        detector.observe(DnsObservation(1.0, 1, "x.com", [a]))
        assert detector.observe(DnsObservation(2.0, 1, "x.com", [b])) is not None
        # second time: the new prefix is now history — no alert
        assert detector.observe(DnsObservation(3.0, 1, "x.com", [b])) is None

    def test_invalid_prefix_bits(self):
        from repro.analytics.anomaly import MappingAnomalyDetector

        with pytest.raises(ValueError):
            MappingAnomalyDetector(prefix_bits=0)


class TestTrackerPathEquivalence:
    """observe()/observe_all() and the grouped observe_database() path
    must build identical timelines — case-folded labels, out-of-order
    streams and all (regression for the PR 3 fast path)."""

    def _flows(self):
        return [
            _flow(1, 10, "Tracker1.Appspot.COM", start=50_000.0),
            _flow(2, 11, "tracker1.appspot.com", start=100.0),
            _flow(1, 12, "app5.appspot.com", start=200.0),
            _flow(3, 10, "tracker2.appspot.com", start=30_000.0),
        ]

    def test_same_timelines_and_order(self):
        database = FlowDatabase.from_flows(self._flows())
        per_flow = TrackerActivityAnalysis(bin_seconds=3600.0)
        per_flow.observe_all(self._flows())
        grouped = TrackerActivityAnalysis(bin_seconds=3600.0)
        grouped.observe_database(database)
        assert [
            (t.service, t.first_seen, sorted(t.active_bins))
            for t in per_flow.timelines()
        ] == [
            (t.service, t.first_seen, sorted(t.active_bins))
            for t in grouped.timelines()
        ]
        # mixed-case label folded into one service, first_seen = min start
        assert per_flow.timelines()[0].service == "tracker1.appspot.com"
        assert per_flow.timelines()[0].first_seen == 100.0

    def test_classifier_sees_lowercased_label_on_both_paths(self):
        wanted = {"tracker1.appspot.com"}
        database = FlowDatabase.from_flows(self._flows())
        per_flow = TrackerActivityAnalysis(
            bin_seconds=3600.0, classifier=lambda fqdn: fqdn in wanted
        )
        per_flow.observe_all(self._flows())
        grouped = TrackerActivityAnalysis(
            bin_seconds=3600.0, classifier=lambda fqdn: fqdn in wanted
        )
        grouped.observe_database(database)
        assert len(per_flow.timelines()) == len(grouped.timelines()) == 1
