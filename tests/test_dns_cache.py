"""Tests for the client stub resolver cache (TTL + LRU behaviour)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns.cache import StubResolverCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = StubResolverCache()
        assert cache.lookup("a.com", now=0.0) is None
        cache.insert("a.com", (1, 2), ttl=60, now=0.0)
        entry = cache.lookup("a.com", now=30.0)
        assert entry is not None
        assert entry.addresses == (1, 2)

    def test_case_insensitive(self):
        cache = StubResolverCache()
        cache.insert("A.COM", (1,), ttl=60, now=0.0)
        assert cache.lookup("a.com", now=1.0) is not None

    def test_ttl_expiry(self):
        cache = StubResolverCache()
        cache.insert("a.com", (1,), ttl=60, now=0.0)
        assert cache.lookup("a.com", now=59.9) is not None
        assert cache.lookup("a.com", now=60.1) is None
        assert cache.stats["expired"] == 1

    def test_max_lifetime_caps_ttl(self):
        cache = StubResolverCache(max_lifetime=3600)
        cache.insert("a.com", (1,), ttl=86400, now=0.0)
        assert cache.lookup("a.com", now=3599) is not None
        assert cache.lookup("a.com", now=3601) is None

    def test_reinsert_refreshes(self):
        cache = StubResolverCache()
        cache.insert("a.com", (1,), ttl=10, now=0.0)
        cache.insert("a.com", (2,), ttl=10, now=8.0)
        entry = cache.lookup("a.com", now=15.0)
        assert entry is not None
        assert entry.addresses == (2,)


class TestCapacity:
    def test_lru_eviction(self):
        cache = StubResolverCache(capacity=2)
        cache.insert("a.com", (1,), ttl=600, now=0.0)
        cache.insert("b.com", (2,), ttl=600, now=1.0)
        cache.lookup("a.com", now=2.0)  # refresh a.com's recency
        cache.insert("c.com", (3,), ttl=600, now=3.0)
        assert cache.lookup("b.com", now=4.0) is None  # evicted
        assert cache.lookup("a.com", now=4.0) is not None
        assert cache.lookup("c.com", now=4.0) is not None
        assert cache.stats["evicted"] == 1

    def test_len(self):
        cache = StubResolverCache(capacity=10)
        for i in range(5):
            cache.insert(f"host{i}.com", (i,), ttl=60, now=0.0)
        assert len(cache) == 5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StubResolverCache(capacity=0)
        with pytest.raises(ValueError):
            StubResolverCache(max_lifetime=0)


class TestPurgeAndStats:
    def test_purge_expired(self):
        cache = StubResolverCache()
        cache.insert("a.com", (1,), ttl=10, now=0.0)
        cache.insert("b.com", (2,), ttl=1000, now=0.0)
        removed = cache.purge_expired(now=500.0)
        assert removed == 1
        assert len(cache) == 1

    def test_hit_ratio(self):
        cache = StubResolverCache()
        cache.insert("a.com", (1,), ttl=60, now=0.0)
        cache.lookup("a.com", now=1.0)
        cache.lookup("missing.com", now=1.0)
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert StubResolverCache().hit_ratio == 0.0


class TestPropertyInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a.com", "b.com", "c.com", "d.com"]),
                st.floats(min_value=0, max_value=1000),
            ),
            max_size=50,
        )
    )
    def test_capacity_never_exceeded(self, operations):
        cache = StubResolverCache(capacity=3)
        for name, now in sorted(operations, key=lambda op: op[1]):
            cache.insert(name, (1,), ttl=100, now=now)
            assert len(cache) <= 3

    @given(st.floats(min_value=0, max_value=1e6))
    def test_fresh_entry_always_hits(self, now):
        cache = StubResolverCache()
        cache.insert("x.com", (9,), ttl=50, now=now)
        assert cache.lookup("x.com", now=now + 49) is not None
