"""End-to-end coverage for the ``repro-serve`` service layer (ISSUE 7).

The contracts under test:

* **bit-identical over HTTP** — every answer the daemon returns while
  ingest is live equals the same query against an in-memory
  ``FlowDatabase.from_flows`` of the acknowledged prefix;
* **snapshot isolation** — a reader holding a pinned snapshot keeps
  getting the pinned member set's answers across concurrent seals and
  compactions, and the compacted-away segment files are unlinked only
  after the last pin releases (never under a reader);
* **single-flight coalescing** — N identical concurrent queries
  execute once (proven with a barrier inside the query function);
* **metrics** — ``/metrics`` exposes the documented families in
  Prometheus text format and they move when traffic happens;
* **SIGTERM** — the daemon drains through the pipeline shutdown path,
  seals the store, and still dies by the signal.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.analytics.database import FlowDatabase
from repro.analytics.storage import FlowStore
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.net.ip import ip_from_str
from repro.serve.metrics import MetricsRegistry
from repro.serve.server import ServeApp
from repro.serve.singleflight import SingleFlight
from repro.sniffer.eventcodec import BatchEncoder

CLIENT = ip_from_str("10.1.0.5")
WEB = ip_from_str("93.184.216.34")


def _flow(i: int) -> FlowRecord:
    return FlowRecord(
        fid=FiveTuple(CLIENT + i % 3, WEB + i % 7, 40_000 + i, 443,
                      TransportProto.TCP),
        start=100.0 + i, end=101.0 + i, protocol=Protocol.TLS,
        bytes_up=100 + i, bytes_down=2_000 + i, packets=6,
        fqdn=f"cdn{i % 3}.example.com",
    )


def _batch(flows) -> bytes:
    encoder = BatchEncoder()
    for flow in flows:
        encoder.add_flow(flow)
    return encoder.take()


class _Daemon:
    """A serve app + HTTP listener on an ephemeral port, in-process."""

    def __init__(self, store: FlowStore):
        self.app = ServeApp(store)
        self.httpd = self.app.make_server("127.0.0.1", 0)
        host, port = self.httpd.server_address[:2]
        self.base = f"http://{host}:{port}"
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()

    def get(self, path: str):
        with urllib.request.urlopen(self.base + path, timeout=30) as rsp:
            return json.load(rsp)

    def get_text(self, path: str) -> str:
        with urllib.request.urlopen(self.base + path, timeout=30) as rsp:
            return rsp.read().decode("utf-8")

    def post(self, path: str, body: bytes):
        request = urllib.request.Request(
            self.base + path, data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=30) as rsp:
            return json.load(rsp)

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture()
def daemon(tmp_path):
    store = FlowStore(tmp_path / "store", spill_rows=64)
    server = _Daemon(store)
    yield server
    server.close()
    store.close()


class TestHttpBitIdentical:
    def test_queries_match_in_memory_database_during_live_ingest(
        self, daemon
    ):
        flows = [_flow(i) for i in range(300)]
        acked = 0
        for start in range(0, 300, 60):
            chunk = flows[start:start + 60]
            assert daemon.post("/ingest", _batch(chunk))["rows"] == 60
            acked += 60
            # Between acks the store is quiescent: the HTTP answer
            # must equal the in-memory database over the acked prefix.
            reference = FlowDatabase.from_flows(flows[:acked])
            assert daemon.get("/query/len")["rows"] == acked
            got = daemon.get("/query/rows-in-window?t0=120&t1=260")
            assert got["rows"] == list(
                reference.rows_in_window(120.0, 260.0)
            )
            got = daemon.get("/query/rows-for-fqdn?fqdn=cdn1.example.com")
            assert got["rows"] == list(
                reference.rows_for_fqdn("cdn1.example.com")
            )
            got = daemon.get("/query/fqdn-server-counts")
            assert [tuple(g) for g in got["groups"]] == (
                reference.fqdn_server_counts()
            )
            got = daemon.get("/query/fqdn-flow-byte-totals")
            assert [tuple(g) for g in got["groups"]] == (
                reference.fqdn_flow_byte_totals()
            )
            got = daemon.get("/query/servers-for-fqdn"
                             "?fqdn=cdn0.example.com")
            assert got["servers"] == sorted(
                reference.servers_for_fqdn("cdn0.example.com")
            )
            got = daemon.get("/query/count-by-protocol")
            assert got["counts"] == {
                protocol.value: count
                for protocol, count
                in reference.count_by_protocol().items()
            }
            got = daemon.get("/query/time-span")
            assert (got["t0"], got["t1"]) == reference.time_span()

    def test_queries_run_against_sealed_and_tail_rows(self, daemon):
        # 300 rows over spill_rows=64 leaves sealed segments + a live
        # tail; the store must report both layers.
        daemon.post("/ingest", _batch([_flow(i) for i in range(300)]))
        stats = daemon.get("/stats")
        assert stats["rows"] == 300
        assert stats["wal_epoch"] >= 1
        assert stats["generation"] >= 1
        assert stats["pinned_generations"] == []
        assert stats["scan_stats"]["queries"] >= 0

    def test_error_codes(self, daemon):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            daemon.get("/query/rows-in-window?t0=1")      # missing t1
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            daemon.get("/query/no-such-query")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            daemon.get("/nowhere")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            daemon.post("/query/len", b"")                # wrong method
        assert excinfo.value.code == 405
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            daemon.post("/ingest", b"garbage-not-a-batch")
        assert excinfo.value.code == 400

    def test_inverted_window_is_a_400_not_an_empty_answer(self, daemon):
        # Regression: t0 > t1 used to slip through _hint_from_params,
        # silently "pruning" everything (prune-report) or returning an
        # empty row set (rows-in-window).  Both now fail loudly, the
        # way the flowstore CLI always has.
        daemon.post("/ingest", _batch([_flow(i) for i in range(50)]))
        for path in ("/query/rows-in-window?t0=5&t1=1",
                     "/prune-report?t0=5&t1=1"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                daemon.get(path)
            assert excinfo.value.code == 400
            assert "t0 must be <= t1" in excinfo.value.read().decode()
        # The boundary case t0 == t1 stays valid: an empty half-open
        # window [t, t), not an error.
        got = daemon.get("/query/rows-in-window?t0=100&t1=100")
        assert got["rows"] == []

    def test_prune_report_over_http(self, daemon):
        daemon.post("/ingest", _batch([_flow(i) for i in range(200)]))
        report = daemon.get("/prune-report?fqdn=cdn1.example.com")
        assert report["scanned_segments"] + report["pruned_segments"] \
            == len(report["segments"])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            daemon.get("/prune-report?protocol=bogus")
        assert excinfo.value.code == 400


class TestCoalescing:
    def test_identical_concurrent_queries_execute_once(self, daemon):
        daemon.post("/ingest", _batch([_flow(i) for i in range(100)]))
        app = daemon.app
        executions = []
        release = threading.Event()
        entered = threading.Event()
        original = app.query_routes["rows-in-window"]

        def slow(snap, params):
            executions.append(threading.get_ident())
            entered.set()
            # Barrier: hold the leader in flight until every follower
            # has had time to arrive and coalesce onto it.
            assert release.wait(timeout=30)
            return original(snap, params)

        app.query_routes["rows-in-window"] = slow
        results = []
        errors = []

        def query():
            try:
                results.append(
                    daemon.get("/query/rows-in-window?t0=100&t1=200")
                )
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=query) for _ in range(6)]
        threads[0].start()
        assert entered.wait(timeout=30)     # leader is inside
        baseline = app.m_coalesced.value(route="rows-in-window")
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.3)                     # let followers enqueue
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 6
        reference = results[0]
        assert all(result == reference for result in results)
        # The barrier held the leader, so every follower coalesced:
        # exactly one execution for six requests.
        assert len(executions) == 1
        assert app.m_coalesced.value(route="rows-in-window") >= (
            baseline + 5
        )


class TestSnapshotIsolation:
    def test_pinned_snapshot_survives_concurrent_seal_and_compact(
        self, tmp_path
    ):
        store = FlowStore(tmp_path / "store", spill_rows=50)
        flows = [_flow(i) for i in range(120)]
        store.add_all(flows)
        snapshot = store.pin()
        # Concurrent writer activity: more ingest, a seal, and a full
        # compaction that retires every pre-pin segment file.
        more = [_flow(i) for i in range(120, 220)]
        store.add_all(more)
        store.flush()
        assert store.compact() > 0
        retired = [path for _generation, path in store._retired]
        assert retired, "compaction should defer unlinks under a pin"
        assert all(Path(path).exists() for path in retired)
        # The snapshot answers over its pinned member set: the sealed
        # segments of the pin instant plus the old tail (frozen by the
        # post-pin seal at a chunk boundary) — i.e. some batch-aligned
        # prefix of the acknowledged stream, bit-identical to the
        # in-memory database over that prefix.
        count = len(snapshot)
        assert 120 <= count <= 220
        reference = FlowDatabase.from_flows((flows + more)[:count])
        assert list(snapshot.rows_in_window(0.0, 1e9)) == list(
            reference.rows_in_window(0.0, 1e9)
        )
        assert snapshot.fqdn_server_counts() == (
            reference.fqdn_server_counts()
        )
        # Force rematerialization from the retired files on disk: a
        # pinned reader must never 404 its snapshot.
        for reader in snapshot._segments:
            reader.release()
        assert list(snapshot.rows_for_fqdn("cdn1.example.com")) == list(
            reference.rows_for_fqdn("cdn1.example.com")
        )
        snapshot.close()
        assert snapshot.released
        # Unpin drained the retirement queue and unlinked the files.
        assert store._retired == []
        assert all(not Path(path).exists() for path in retired)
        # The live store serves the full stream.
        full = FlowDatabase.from_flows(flows + more)
        assert list(store.rows_in_window(0.0, 1e9)) == list(
            full.rows_in_window(0.0, 1e9)
        )
        store.close()

    def test_unpin_is_idempotent_and_close_force_drains(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=30)
        store.add_all([_flow(i) for i in range(90)])
        snapshot = store.pin()
        snapshot.close()
        snapshot.close()                    # second close: no-op
        assert store._pins == {}
        other = store.pin()
        store.flush()
        store.compact()
        assert store._retired
        store.close()                       # force-drains despite pin
        assert store._retired == []
        assert not other.released           # close() doesn't unpin...
        other.close()                       # ...but unpin still works
        assert store._pins == {}

    def test_stats_reports_pins_and_epoch(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=40)
        store.add_all([_flow(i) for i in range(100)])
        with store.pin():
            stats = store.stats()
            assert stats["wal_epoch"] == store._wal_epoch
            assert stats["generation"] == store._generation
            assert stats["pinned_generations"] == [
                {"generation": store._generation, "readers": 1},
            ]
            assert stats["retired_pending"] == 0
        assert store.stats()["pinned_generations"] == []
        store.close()

    def test_concurrent_readers_during_ingest_see_prefixes(
        self, tmp_path
    ):
        """Hammer queries from threads while the writer ingests;
        every answer must be a gap-free, monotonically growing prefix
        of the stream (the captured tail is live between queries, so
        counts may grow, but an answer must never tear)."""
        store = FlowStore(tmp_path / "store", spill_rows=64,
                          parallel=2)
        stop = threading.Event()
        failures = []

        def reader():
            last = 0
            while not stop.is_set():
                with store.pin() as snapshot:
                    count = len(snapshot)
                    rows = snapshot.rows_in_window(0.0, 1e9)
                    # The full-range answer is the row indices
                    # 0..n-1 with no holes, at least as long as the
                    # count read just before it, and never shrinking.
                    if (list(rows) != list(range(len(rows)))
                            or len(rows) < count or count < last):
                        failures.append((last, count, len(rows)))
                        return
                    last = len(rows)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        flows = [_flow(i) for i in range(600)]
        for start in range(0, 600, 40):
            store.add_all(flows[start:start + 40])
        store.flush()
        store.compact(small_rows=200)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures
        assert len(store) == 600
        store.close()


class TestMetrics:
    def test_registry_renders_prometheus_text(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "demo_total", "Demo counter.", labelnames=("kind",)
        )
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        gauge = registry.gauge("demo_gauge", "Demo gauge.")
        gauge.set(1.5)
        histogram = registry.histogram(
            "demo_seconds", "Demo histogram.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render()
        assert '# TYPE demo_total counter' in text
        assert 'demo_total{kind="a"} 1' in text
        assert 'demo_total{kind="b"} 2' in text
        assert 'demo_gauge 1.5' in text
        assert 'demo_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_seconds_bucket{le="1"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert 'demo_seconds_count 3' in text

    def test_callback_backed_metrics_read_at_scrape_time(self):
        registry = MetricsRegistry()
        state = {"value": 7}
        registry.gauge("demo_live", "Live.", fn=lambda: state["value"])
        assert "demo_live 7" in registry.render()
        state["value"] = 9
        assert "demo_live 9" in registry.render()

    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "x")
        with pytest.raises(ValueError):
            registry.counter("dup_total", "y")

    def test_metrics_endpoint_exposes_documented_families(self, daemon):
        daemon.post("/ingest", _batch([_flow(i) for i in range(100)]))
        daemon.get("/query/rows-in-window?t0=0&t1=1000")
        text = daemon.get_text("/metrics")
        for family in (
            "serve_requests_total",
            "serve_query_seconds",
            "serve_coalesced_total",
            "serve_ingest_batches_total",
            "serve_ingest_rows_total",
            "serve_inflight_queries",
            "serve_shed_total",
            "serve_deadline_exceeded_total",
            "serve_degraded_transitions_total",
            "serve_degraded_probes_total",
            "serve_read_only",
            "serve_admission_inflight_query",
            "serve_admission_queued_query",
            "serve_admission_inflight_ingest",
            "serve_admission_queued_ingest",
            "flowstore_rows",
            "flowstore_tail_rows",
            "flowstore_segments",
            "flowstore_quarantined_segments",
            "flowstore_generation",
            "flowstore_wal_epoch",
            "flowstore_pinned_readers",
            "flowstore_retired_pending",
            "flowstore_scan_queries_total",
            "flowstore_segments_scanned_total",
            "flowstore_segments_pruned_total",
            "flowstore_wal_recovered_batches",
            "flowstore_wal_recovered_rows",
            "flowstore_wal_torn_bytes_dropped",
            "flowstore_wal_skipped_records",
        ):
            assert f"# TYPE {family} " in text, family
        assert "serve_ingest_rows_total 100" in text
        assert "flowstore_rows 100" in text
        # Ingest-rate accounting also flows through the pipeline hook.
        daemon.app.note_ingest(2, 50)
        text = daemon.get_text("/metrics")
        assert "serve_ingest_rows_total 150" in text
        assert "serve_ingest_batches_total 3" in text


class TestSingleFlight:
    def test_leader_and_followers_share_one_execution(self):
        flight = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        calls = []

        def work():
            calls.append(1)
            entered.set()
            release.wait(timeout=30)
            return "value"

        outcomes = []

        def run():
            outcomes.append(flight.do("key", work))

        threads = [threading.Thread(target=run) for _ in range(4)]
        threads[0].start()
        assert entered.wait(timeout=30)
        for thread in threads[1:]:
            thread.start()
        time.sleep(0.2)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert len(calls) == 1
        assert sorted(c for _v, c in outcomes) == [False, True, True,
                                                   True]
        assert all(value == "value" for value, _c in outcomes)
        # Key retired: the next call computes fresh.
        release.set()
        value, coalesced = flight.do("key", lambda: "fresh")
        assert (value, coalesced) == ("fresh", False)

    def test_leader_error_propagates_to_followers(self):
        flight = SingleFlight()
        release = threading.Event()
        entered = threading.Event()

        def explode():
            entered.set()
            release.wait(timeout=30)
            raise RuntimeError("boom")

        errors = []

        def leader():
            try:
                flight.do("key", explode)
            except RuntimeError as exc:
                errors.append(("leader", str(exc)))

        def follower():
            try:
                flight.do("key", lambda: "never")
            except RuntimeError as exc:
                errors.append(("follower", str(exc)))

        first = threading.Thread(target=leader)
        first.start()
        assert entered.wait(timeout=30)
        second = threading.Thread(target=follower)
        second.start()
        time.sleep(0.2)
        release.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert sorted(who for who, _msg in errors) == [
            "follower", "leader",
        ]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestServeCliSigterm:
    def test_sigterm_seals_the_store_and_keeps_the_exit_status(
        self, tmp_path
    ):
        directory = tmp_path / "store"
        port = _free_port()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cli", str(directory),
             "--host", "127.0.0.1", "--port", str(port)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            line = child.stdout.readline()
            assert "listening" in line, line
            base = f"http://127.0.0.1:{port}"
            flows = [_flow(i) for i in range(50)]
            request = urllib.request.Request(
                f"{base}/ingest", data=_batch(flows), method="POST"
            )
            with urllib.request.urlopen(request, timeout=30) as rsp:
                assert json.load(rsp)["rows"] == 50
            with urllib.request.urlopen(
                f"{base}/query/len", timeout=30
            ) as rsp:
                assert json.load(rsp)["rows"] == 50
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGTERM, child.stderr.read()
        # The shutdown path sealed the tail: a reopen finds every
        # acknowledged row in segments, nothing left to replay.
        store = FlowStore(directory)
        assert len(store) == 50
        assert store.health()["wal"]["recovered_rows"] == 0
        store.close()


class TestServeSharded:
    """The daemon fronts a sharded store through the same HTTP surface.

    ``repro-serve`` auto-detects ``SHARDS.json`` and opens the
    scatter-gather coordinator; every endpoint must keep working, and
    the answers must equal the in-memory database over the
    coordinator's shard-major row order.
    """

    def test_endpoints_work_against_a_coordinator(self, tmp_path):
        from repro.analytics.shard import ShardCoordinator

        store = ShardCoordinator(tmp_path / "store", shards=2,
                                 spill_rows=64)
        server = _Daemon(store)
        try:
            flows = [_flow(i) for i in range(150)]
            assert server.post("/ingest", _batch(flows))["rows"] == 150
            shard_major = [
                flow for part in store.router.split_flows(flows)
                for flow in part
            ]
            reference = FlowDatabase.from_flows(shard_major)
            assert server.get("/query/len")["rows"] == 150
            got = server.get("/query/rows-in-window?t0=120&t1=200")
            assert got["rows"] == list(
                reference.rows_in_window(120.0, 200.0)
            )
            got = server.get("/query/fqdn-server-counts")
            assert [tuple(g) for g in got["groups"]] == (
                reference.fqdn_server_counts()
            )
            got = server.get("/query/time-span")
            assert (got["t0"], got["t1"]) == reference.time_span()
            stats = server.get("/stats")
            assert stats["sharded"] is True
            assert stats["shards"] == 2
            assert stats["rows"] == 150
            health = server.get("/health")
            assert health["status"] == "ok"
            assert health["shards"] == 2
            metrics = server.get_text("/metrics")
            assert "flowstore_rows 150" in metrics
        finally:
            server.close()
            store.close()

    def test_cli_detects_shards_json(self, tmp_path):
        from repro.analytics.shard import ShardCoordinator

        directory = tmp_path / "store"
        seed = ShardCoordinator(directory, shards=2)
        seed.add_all([_flow(i) for i in range(20)])
        seed.close()
        port = _free_port()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cli", str(directory),
             "--host", "127.0.0.1", "--port", str(port)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            line = child.stdout.readline()
            assert "listening" in line, line
            base = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(
                f"{base}/stats", timeout=30
            ) as rsp:
                stats = json.load(rsp)
            assert stats["sharded"] is True
            assert stats["rows"] == 20
            request = urllib.request.Request(
                f"{base}/ingest",
                data=_batch([_flow(i) for i in range(20, 40)]),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as rsp:
                assert json.load(rsp)["rows"] == 20
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGTERM, child.stderr.read()
        reopened = ShardCoordinator(directory)
        assert len(reopened) == 40
        reopened.close()
