"""Service-level chaos suite: the serve daemon under abuse.

PR 6 proved the store's crash discipline with filesystem fault
injection; this suite extends the same discipline one layer up, to the
always-on daemon.  What must hold:

* **admission** — load past the per-class in-flight + queue limits is
  shed with 503 + ``Retry-After`` while ``/health`` and ``/metrics``
  keep answering;
* **deadlines** — a query past its budget returns 504 with honest
  partial-work counters instead of finishing an unbounded scan, in
  serial and ``parallel=N`` kernel dispatch alike;
* **degradation** — ENOSPC on the WAL path flips ingest to read-only
  (503 + machine-readable reason), probes back off exponentially, and
  the ready→read-only→ready cycle is *exact* (transition counters);
* **transport** — slow-loris clients are timed out, mid-body
  disconnects never become torn batches, oversized bodies are refused
  from ``Content-Length`` before a byte of body is read;
* **singleflight** — a crashing or expiring leader never hangs or
  poisons its followers;
* **no wedging** — after every storm the thread count returns to
  baseline, the coalescing table is empty, and every 200-acked ingest
  row is durable (proven across a concurrent SIGTERM in the CLI test).

Misbehaving clients come from :mod:`tests.chaosclient`; filesystem
faults from :mod:`tests.faultfs` (scoped to the WAL via ``only=``).
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

import chaosclient
from faultfs import FaultFS, inject
from repro.analytics import storage
from repro.analytics.storage import FlowStore
from repro.net.flow import FiveTuple, FlowRecord, Protocol, TransportProto
from repro.net.ip import ip_from_str
from repro.serve.admission import AdmissionController, RouteClassLimits
from repro.serve.deadline import Deadline, DeadlineExceeded
from repro.serve.governor import READ_ONLY, READY, DegradationGovernor
from repro.serve.server import ServeApp
from repro.serve.singleflight import SingleFlight, SingleFlightTimeout
from repro.sniffer.eventcodec import BatchEncoder

CLIENT = ip_from_str("10.1.0.5")
WEB = ip_from_str("93.184.216.34")


def _flow(i: int, fqdn: str | None = None) -> FlowRecord:
    return FlowRecord(
        fid=FiveTuple(CLIENT + i % 3, WEB + i % 7, 40_000 + i % 20_000,
                      443, TransportProto.TCP),
        start=100.0 + i, end=101.0 + i, protocol=Protocol.TLS,
        bytes_up=100 + i, bytes_down=2_000 + i, packets=6,
        fqdn=fqdn if fqdn is not None else f"cdn{i % 3}.example.com",
    )


def _batch(flows) -> bytes:
    encoder = BatchEncoder()
    for flow in flows:
        encoder.add_flow(flow)
    return encoder.take()


class _FakeClock:
    """Deterministic monotonic time for governor/admission tests."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _Daemon:
    """A serve app + HTTP listener on an ephemeral port, in-process."""

    def __init__(self, store: FlowStore, **app_kwargs):
        self.app = ServeApp(store, **app_kwargs)
        self.httpd = self.app.make_server("127.0.0.1", 0)
        self.host, self.port = self.httpd.server_address[:2]
        self.base = f"http://{self.host}:{self.port}"
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()

    def get(self, path: str, headers: dict | None = None):
        request = urllib.request.Request(
            self.base + path, headers=headers or {}
        )
        with urllib.request.urlopen(request, timeout=30) as rsp:
            return json.load(rsp)

    def post(self, path: str, body: bytes):
        request = urllib.request.Request(
            self.base + path, data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=30) as rsp:
            return json.load(rsp)

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()


def _preserve_on_failure(directory, label: str) -> None:
    """Copy a failing store for the CI crash-artifact upload."""
    root = os.environ.get("REPRO_CRASH_ARTIFACTS")
    if not root or not os.path.isdir(str(directory)):
        return
    target = os.path.join(root, label)
    os.makedirs(root, exist_ok=True)
    shutil.copytree(directory, target, dirs_exist_ok=True)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def _app(self, tmp_path, max_inflight=1, max_queue=0,
             max_wait=0.0) -> ServeApp:
        store = FlowStore(tmp_path / "store", spill_rows=64)
        store.add_all(_flow(i) for i in range(50))
        return ServeApp(
            store,
            admission=AdmissionController({
                "query": RouteClassLimits(
                    max_inflight, max_queue, max_wait
                ),
                "ingest": RouteClassLimits(1, 0, 0.0),
            }),
        )

    def test_excess_queries_shed_503_with_retry_after(self, tmp_path):
        app = self._app(tmp_path)
        entered, release = threading.Event(), threading.Event()
        original = app.query_routes["len"]

        def slow(snap, params):
            entered.set()
            release.wait(timeout=30)
            return original(snap, params)

        app.query_routes["len"] = slow
        results = []
        worker = threading.Thread(target=lambda: results.append(
            app.handle("GET", "/query/len", {})
        ))
        worker.start()
        try:
            assert entered.wait(timeout=30)
            # The single query slot is held; a *different* query (no
            # coalescing possible) must be shed immediately.
            status, _ctype, payload, headers = app.handle(
                "GET", "/query/fqdns", {}
            )
            assert status == 503
            body = json.loads(payload)
            assert body["error"] == "overloaded"
            assert body["route_class"] == "query"
            assert headers["Retry-After"] == str(
                body["retry_after_s"]
            )
            assert app.m_shed.value(route_class="query") == 1
            # The exempt routes answer while the gate is full.
            status, _ctype, payload, _headers = app.handle(
                "GET", "/health", {}
            )
            assert status == 200
            health = json.loads(payload)
            assert health["admission"]["query"]["inflight"] == 1
            status, _ctype, _payload, _headers = app.handle(
                "GET", "/metrics", {}
            )
            assert status == 200
        finally:
            release.set()
            worker.join(timeout=30)
        status, _ctype, payload, _headers = results[0]
        assert status == 200
        # The slot was released: the same query now succeeds.
        status, _ctype, _payload, _headers = app.handle(
            "GET", "/query/fqdns", {}
        )
        assert status == 200
        app.store.close()

    def test_bounded_queue_admits_when_slot_frees(self, tmp_path):
        app = self._app(tmp_path, max_inflight=1, max_queue=1,
                        max_wait=30.0)
        entered, release = threading.Event(), threading.Event()
        original = app.query_routes["len"]

        def slow(snap, params):
            entered.set()
            release.wait(timeout=30)
            return original(snap, params)

        app.query_routes["len"] = slow
        holder = threading.Thread(target=lambda: app.handle(
            "GET", "/query/len", {}
        ))
        holder.start()
        assert entered.wait(timeout=30)
        queued_result = []
        queued = threading.Thread(target=lambda: queued_result.append(
            app.handle("GET", "/query/fqdns", {})
        ))
        queued.start()
        deadline = time.monotonic() + 30
        while (app.admission.queued("query") != 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert app.admission.queued("query") == 1
        # Queue full: the next arrival is shed, not parked.
        status, _ctype, _payload, _headers = app.handle(
            "GET", "/query/slds", {}
        )
        assert status == 503
        release.set()
        holder.join(timeout=30)
        queued.join(timeout=30)
        status, _ctype, _payload, _headers = queued_result[0]
        assert status == 200
        assert app.admission.queued("query") == 0
        assert app.admission.inflight("query") == 0
        app.store.close()


# ---------------------------------------------------------------------------
# Request deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    def _store(self, tmp_path, parallel=None) -> FlowStore:
        store = FlowStore(tmp_path / "store", spill_rows=32,
                          parallel=parallel)
        store.add_all(_flow(i) for i in range(200))
        store.flush()
        assert len(store._segments) >= 4
        return store

    def test_expired_deadline_yields_504_with_partial_counters(
        self, tmp_path
    ):
        store = self._store(tmp_path)
        daemon = _Daemon(store)
        try:
            # A kernel that sleeps per segment: the deadline expires
            # mid-scan, so some kernels finish and the rest never run.
            def slow_scan(snap, params):
                def kernel(db, fqdn_map, local_rows, base):
                    time.sleep(0.06)
                    return len(db)
                return {"parts": snap._run_sources(kernel)}

            daemon.app.query_routes["slow-scan"] = slow_scan
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                daemon.get("/query/slow-scan",
                           headers={"X-Request-Deadline": "0.15"})
            assert excinfo.value.code == 504
            body = json.load(excinfo.value)
            assert body["deadline_s"] == pytest.approx(0.15)
            assert body["kernels_scheduled"] >= 4
            assert 1 <= body["kernels_done"] < (
                body["kernels_scheduled"]
            )
            metrics = daemon.app.m_deadline_exceeded
            assert metrics.value(route="/query/slow-scan") == 1
            # The store is not poisoned: a fresh query succeeds and
            # nothing stays pinned or in flight.
            assert daemon.get("/query/len")["rows"] == 200
            assert daemon.app.singleflight.in_flight() == 0
            assert store._pins == {}
        finally:
            daemon.close()
            store.close()

    def test_cancellation_reaches_the_parallel_pool(self, tmp_path):
        store = self._store(tmp_path, parallel=2)
        app = ServeApp(store)

        def slow_scan(snap, params):
            def kernel(db, fqdn_map, local_rows, base):
                time.sleep(0.05)
                return len(db)
            return {"parts": snap._run_sources(kernel)}

        app.query_routes["slow-scan"] = slow_scan
        status, _ctype, payload, _headers = app.handle(
            "GET", "/query/slow-scan", {},
            headers={"X-Request-Deadline": "0.08"},
        )
        assert status == 504
        body = json.loads(payload)
        assert body["kernels_done"] < body["kernels_scheduled"]
        store.close()

    def test_token_checked_at_kernel_boundaries(self, tmp_path):
        # Direct storage-level contract: an expired token stops the
        # pass before the next kernel, with exact accounting.
        store = self._store(tmp_path)
        token = Deadline(60.0)
        calls = []

        def kernel(db, fqdn_map, local_rows, base):
            calls.append(base)
            if len(calls) == 2:
                token.expires_at = 0.0  # expire mid-pass
            return 0

        snap = store.pin()
        snap.cancel_token = token
        with pytest.raises(DeadlineExceeded):
            snap._run_sources(kernel)
        store.unpin(snap)
        assert len(calls) == 2
        assert token.kernels_done == 2
        assert token.kernels_scheduled > 2
        store.close()

    def test_bad_deadline_header_is_a_400(self, tmp_path):
        store = FlowStore(tmp_path / "store")
        app = ServeApp(store)
        for bad in ("zero", "0", "-1"):
            status, _ctype, payload, _headers = app.handle(
                "GET", "/query/len", {},
                headers={"X-Request-Deadline": bad},
            )
            assert status == 400, bad
            assert "X-Request-Deadline" in json.loads(payload)["error"]
        store.close()


# ---------------------------------------------------------------------------
# Read-only degradation
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_ready_read_only_ready_cycle_is_exact(self, tmp_path):
        clock = _FakeClock()
        store = FlowStore(tmp_path / "store", spill_rows=10_000)
        app = ServeApp(store, governor=DegradationGovernor(
            backoff_s=1.0, backoff_max_s=8.0, clock=clock,
        ))

        def ingest(i):
            return app.handle(
                "POST", "/ingest", {},
                _batch([_flow(i, fqdn=f"b{i}.example.com")]),
            )

        fs = FaultFS(persistent={"write": errno.ENOSPC},
                     only="tail.wal")
        saved_sleep = storage._sleep
        storage._sleep = lambda _s: None  # skip the retry backoff
        try:
            with inject(fs):
                # ENOSPC escapes the store's retries → 503, and the
                # breaker trips straight to read-only (capacity errno).
                status, _c, payload, headers = ingest(0)
                assert status == 503
                body = json.loads(payload)
                assert body["error"] == "ingest failed"
                assert body["reason"] == "ENOSPC"
                assert headers["Retry-After"] == "1"
                assert app.governor.state == READ_ONLY
                # Before the backoff elapses every ingest is refused
                # *without touching the store*.
                ops_before = fs.ops
                status, _c, payload, headers = ingest(1)
                assert status == 503
                body = json.loads(payload)
                assert body["error"] == "store is read-only"
                assert body["reason"] == "ENOSPC"
                assert "Retry-After" in headers
                assert fs.ops == ops_before
                # Health + metrics surface the state.
                status, _c, payload, _h = app.handle(
                    "GET", "/health", {}
                )
                service = json.loads(payload)["service"]
                assert service["state"] == READ_ONLY
                assert service["transitions"][READ_ONLY] == 1
                assert "serve_read_only 1" in app.registry.render()
                # Backoff elapses → exactly one probe is admitted; it
                # fails (fault still injected) and the backoff doubles.
                clock.advance(1.5)
                status, _c, _p, _h = ingest(2)
                assert status == 503
                assert app.governor.probes == {"ok": 0, "failed": 1}
                clock.advance(1.5)  # less than the doubled backoff
                ops_before = fs.ops
                status, _c, _p, _h = ingest(3)
                assert status == 503
                assert fs.ops == ops_before  # refused, not probed
            # Fault cleared + backoff elapsed → the probe succeeds and
            # the service recovers on its own.
            clock.advance(2.0)
            status, _c, payload, _h = ingest(4)
            assert status == 200
            assert json.loads(payload)["rows"] == 1
            assert app.governor.state == READY
            # The documented state machine, exactly: one trip, one
            # recovery, one failed probe, one successful probe.
            assert app.governor.transitions == {
                READY: 1, READ_ONLY: 1,
            }
            assert app.governor.probes == {"ok": 1, "failed": 1}
            assert "serve_read_only 0" in app.registry.render()
            transitions = app.m_degraded_transitions
            assert transitions.value(to=READ_ONLY) == 1
            assert transitions.value(to=READY) == 1
            # Shed/refused batches never reached the store; the acked
            # one is durable.
            store.flush()
            assert sorted(store.fqdns()) == ["b4.example.com"]
        finally:
            storage._sleep = saved_sleep
            store.close()

    def test_non_capacity_errors_need_a_failure_streak(self):
        clock = _FakeClock()
        governor = DegradationGovernor(failure_threshold=3,
                                       clock=clock)
        for _ in range(2):
            governor.record_failure(OSError(errno.EIO, "io error"))
            assert governor.state == READY
        governor.record_success()  # streak broken
        for _ in range(2):
            governor.record_failure(OSError(errno.EIO, "io error"))
            assert governor.state == READY
        governor.record_failure(OSError(errno.EIO, "io error"))
        assert governor.state == READ_ONLY
        assert governor.reason == "EIO"

    def test_probe_backoff_doubles_and_is_bounded(self):
        clock = _FakeClock()
        governor = DegradationGovernor(backoff_s=1.0, backoff_max_s=4.0,
                                       clock=clock)
        governor.record_failure(OSError(errno.ENOSPC, "full"))
        assert governor.state == READ_ONLY
        expected = [2.0, 4.0, 4.0, 4.0]  # doubling, then the ceiling
        for backoff in expected:
            clock.advance(100.0)
            admitted, _info = governor.admit()
            assert admitted  # the probe
            admitted, info = governor.admit()
            assert not admitted  # only one probe at a time
            governor.record_failure(OSError(errno.ENOSPC, "full"))
            assert governor._backoff_s == backoff
        clock.advance(100.0)
        admitted, _info = governor.admit()
        assert admitted
        governor.record_success()
        assert governor.state == READY
        assert governor.transitions == {READY: 1, READ_ONLY: 1}


# ---------------------------------------------------------------------------
# Singleflight hardening
# ---------------------------------------------------------------------------


class TestSingleFlightHardening:
    def test_followers_redispatch_past_a_crashed_leader(self):
        flight = SingleFlight()
        entered, release = threading.Event(), threading.Event()

        def crash():
            entered.set()
            release.wait(timeout=30)
            raise RuntimeError("leader crashed")

        leader_error = []

        def leader():
            try:
                flight.do("key", crash)
            except RuntimeError as exc:
                leader_error.append(str(exc))

        follower_result = []

        def follower():
            follower_result.append(flight.do(
                "key", lambda: "recomputed",
                timeout=30.0, retry_on_leader_error=True,
            ))

        first = threading.Thread(target=leader)
        first.start()
        assert entered.wait(timeout=30)
        second = threading.Thread(target=follower)
        second.start()
        time.sleep(0.1)
        release.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert leader_error == ["leader crashed"]
        # The follower re-dispatched as a fresh leader instead of
        # inheriting the crash (or hanging).
        assert follower_result == [("recomputed", False)]
        assert flight.in_flight() == 0

    def test_follower_wait_is_bounded(self):
        flight = SingleFlight()
        entered, release = threading.Event(), threading.Event()

        def stall():
            entered.set()
            release.wait(timeout=30)
            return "late"

        leader = threading.Thread(
            target=lambda: flight.do("key", stall)
        )
        leader.start()
        assert entered.wait(timeout=30)
        start = time.monotonic()
        with pytest.raises(SingleFlightTimeout):
            flight.do("key", lambda: "never", timeout=0.2)
        assert time.monotonic() - start < 5.0
        release.set()
        leader.join(timeout=30)
        assert flight.in_flight() == 0

    def test_default_mode_still_propagates_leader_errors(self):
        flight = SingleFlight()
        entered, release = threading.Event(), threading.Event()

        def crash():
            entered.set()
            release.wait(timeout=30)
            raise ValueError("boom")

        errors = []

        def leader():
            try:
                flight.do("key", crash)
            except ValueError:
                errors.append("leader")

        def follower():
            try:
                flight.do("key", lambda: "never")
            except ValueError:
                errors.append("follower")

        first = threading.Thread(target=leader)
        first.start()
        assert entered.wait(timeout=30)
        second = threading.Thread(target=follower)
        second.start()
        time.sleep(0.1)
        release.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert sorted(errors) == ["follower", "leader"]


# ---------------------------------------------------------------------------
# Transport hardening
# ---------------------------------------------------------------------------


class TestTransportHardening:
    @pytest.fixture()
    def daemon(self, tmp_path):
        store = FlowStore(tmp_path / "store", spill_rows=64)
        server = _Daemon(store, socket_timeout_s=0.5)
        yield server
        server.close()
        store.close()

    def test_slow_loris_is_timed_out_not_accumulated(self, daemon):
        baseline = threading.active_count()
        socks = [
            chaosclient.slow_loris(daemon.host, daemon.port)
            for _ in range(4)
        ]
        try:
            # The daemon still answers while the loris sockets stall.
            assert daemon.get("/query/len")["rows"] == 0
            # Each stalled connection is closed by the socket timeout.
            for sock in socks:
                assert chaosclient.wait_closed(sock, deadline_s=10.0)
        finally:
            for sock in socks:
                sock.close()
        deadline = time.monotonic() + 10
        while (threading.active_count() > baseline + 1
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert threading.active_count() <= baseline + 1

    def test_mid_body_disconnect_never_lands_a_torn_batch(
        self, daemon
    ):
        assert daemon.post("/ingest",
                           _batch([_flow(0)]))["rows"] == 1
        chaosclient.mid_body_disconnect(
            daemon.host, daemon.port, content_length=50_000,
            send_bytes=512,
        )
        # The handler thread is released by its socket timeout and the
        # partial upload never reaches the store.
        time.sleep(0.8)
        assert daemon.get("/query/len")["rows"] == 1
        assert daemon.post("/ingest",
                           _batch([_flow(1)]))["rows"] == 1

    def test_oversized_body_refused_from_the_header(self, daemon):
        daemon.app.max_ingest_bytes = 4096
        status, sent = chaosclient.oversized_post(
            daemon.host, daemon.port, content_length=10 << 20,
        )
        assert status == 413
        # Refused from Content-Length alone: the client got its answer
        # after a negligible fraction of the announced 10 MiB.
        assert sent <= 64 << 10
        assert daemon.get("/health")["service"]["state"] == READY

    def test_truncated_body_is_a_400_when_client_waits(self, daemon):
        with chaosclient.open_conn(daemon.host, daemon.port) as sock:
            sock.sendall(
                f"POST /ingest HTTP/1.1\r\nHost: {daemon.host}\r\n"
                f"Content-Length: 1000\r\n\r\n".encode()
            )
            sock.sendall(b"x" * 100)
            sock.shutdown(socket.SHUT_WR)  # EOF with 900 bytes owed
            status, _headers, _body = chaosclient._read_response(sock)
        assert status == 400

    def test_missing_content_length_is_a_411(self, daemon):
        with chaosclient.open_conn(daemon.host, daemon.port) as sock:
            sock.sendall(
                f"POST /ingest HTTP/1.1\r\nHost: {daemon.host}\r\n"
                f"\r\n".encode()
            )
            status, _headers, _body = chaosclient._read_response(sock)
        assert status == 411


# ---------------------------------------------------------------------------
# The combined chaos sweep
# ---------------------------------------------------------------------------


class TestChaosSweep:
    def test_mixed_abuse_never_wedges_the_daemon(self, tmp_path):
        store_dir = tmp_path / "store"
        store = FlowStore(store_dir, spill_rows=64)
        daemon = _Daemon(
            store,
            admission=AdmissionController({
                "query": RouteClassLimits(2, 2, 0.05),
                "ingest": RouteClassLimits(1, 1, 0.05),
            }),
            socket_timeout_s=0.5,
        )
        baseline = threading.active_count()
        acked_fqdns: list[str] = []
        shed_fqdns: list[str] = []
        ack_lock = threading.Lock()
        stop = threading.Event()
        errors: list[str] = []

        def ingest_storm(worker: int) -> None:
            i = 0
            while not stop.is_set():
                fqdn = f"w{worker}-{i}.example.com"
                i += 1
                try:
                    status, _h, body = chaosclient.raw_post(
                        daemon.host, daemon.port, "/ingest",
                        _batch([_flow(i, fqdn=fqdn)]),
                    )
                except OSError:
                    continue
                with ack_lock:
                    if status == 200:
                        acked_fqdns.append(fqdn)
                    elif status == 503:
                        shed_fqdns.append(fqdn)
                    elif status != 504:
                        errors.append(f"ingest {fqdn}: {status}")

        def query_storm() -> None:
            while not stop.is_set():
                try:
                    status, _h, _b = chaosclient.raw_get(
                        daemon.host, daemon.port, "/query/len",
                        headers={"X-Request-Deadline": "5"},
                    )
                except OSError:
                    continue
                if status not in (200, 503, 504):
                    errors.append(f"query: {status}")

        def loris_storm() -> None:
            while not stop.is_set():
                try:
                    sock = chaosclient.slow_loris(
                        daemon.host, daemon.port
                    )
                except OSError:
                    continue
                time.sleep(0.2)
                sock.close()

        def disconnect_storm() -> None:
            while not stop.is_set():
                try:
                    chaosclient.mid_body_disconnect(
                        daemon.host, daemon.port,
                        content_length=20_000, send_bytes=64,
                    )
                except OSError:
                    pass
                time.sleep(0.05)

        workers = (
            [threading.Thread(target=ingest_storm, args=(w,))
             for w in range(3)]
            + [threading.Thread(target=query_storm)
               for _ in range(4)]
            + [threading.Thread(target=loris_storm)]
            + [threading.Thread(target=disconnect_storm)]
        )
        try:
            for worker in workers:
                worker.start()
            storm_deadline = time.monotonic() + 2.0
            while time.monotonic() < storm_deadline:
                # The exempt routes must answer *during* the storm.
                health = daemon.get("/health")
                assert "service" in health
                time.sleep(0.2)
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
                assert not worker.is_alive()

            assert errors == [], errors[:10]
            assert acked_fqdns, "storm never landed a single ack"
            assert shed_fqdns, "storm never tripped admission"
            # Coalescing state survived the shed/deadline storm clean.
            assert daemon.app.singleflight.in_flight() == 0
            # Every 200-acked batch is present; every shed one absent.
            daemon.app.store.flush()
            present = set(store.fqdns())
            missing = [f for f in acked_fqdns if f not in present]
            leaked = [f for f in shed_fqdns if f in present]
            assert missing == [], missing[:10]
            assert leaked == [], leaked[:10]
            # Thread count drains back to baseline once the socket
            # timeouts reap the loris/disconnect stragglers.
            deadline = time.monotonic() + 15
            while (threading.active_count() > baseline + 2
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            assert threading.active_count() <= baseline + 2
            assert daemon.get("/health")["status"] == "ok"
        except BaseException:
            stop.set()
            _preserve_on_failure(store_dir, "serve-chaos-sweep")
            raise
        finally:
            stop.set()
            daemon.close()
            store.close()


# ---------------------------------------------------------------------------
# SIGTERM drain while shedding (CLI, subprocess)
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestSigtermWhileShedding:
    def test_acked_rows_survive_shed_rows_absent_exit_by_signal(
        self, tmp_path
    ):
        directory = tmp_path / "store"
        port = _free_port()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cli", str(directory),
             "--host", "127.0.0.1", "--port", str(port),
             "--ingest-inflight", "1", "--ingest-queue", "0",
             "--queue-wait", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        acked: list[str] = []
        shed: list[str] = []
        lock = threading.Lock()
        stop = threading.Event()

        def storm(worker: int) -> None:
            i = 0
            while not stop.is_set():
                fqdn = f"w{worker}-{i}.example.com"
                i += 1
                try:
                    status, _h, body = chaosclient.raw_post(
                        "127.0.0.1", port, "/ingest",
                        _batch([_flow(i, fqdn=fqdn)]), timeout=5.0,
                    )
                except OSError:
                    continue  # shutdown race: not acked, don't count
                with lock:
                    if status == 200:
                        acked.append(fqdn)
                    elif status == 503:
                        shed.append(fqdn)

        try:
            line = child.stdout.readline()
            assert "listening" in line, line
            workers = [
                threading.Thread(target=storm, args=(w,))
                for w in range(6)
            ]
            for worker in workers:
                worker.start()
            # Let the flood build up acks and sheds, then kill while
            # both are happening.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with lock:
                    if acked and shed:
                        break
                time.sleep(0.05)
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=30)
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
        finally:
            stop.set()
            if child.poll() is None:
                child.kill()
                child.wait()
        assert child.returncode == -signal.SIGTERM, (
            child.stderr.read()
        )
        assert acked, "no ingest was ever acknowledged"
        assert shed, "admission never shed while draining"
        store = FlowStore(directory)
        try:
            present = set(store.fqdns())
            missing = [f for f in acked if f not in present]
            leaked = [f for f in shed if f in present]
            if missing or leaked:
                _preserve_on_failure(directory, "serve-sigterm-shed")
            # Every 200 before the signal is durable; every shed 503
            # left no trace.
            assert missing == [], missing[:10]
            assert leaked == [], leaked[:10]
            # The drain sealed the tail: nothing left to replay.
            assert store.health()["wal"]["recovered_rows"] == 0
        finally:
            store.close()
