"""Fault-injection filesystem layer for the crash-consistency suite.

``repro.analytics.storage`` routes every state-changing filesystem
call (payload writes, fsyncs, directory fsyncs, renames, truncates,
unlinks) through its module-level ``_io`` seam.  :class:`FaultFS`
implements the same interface while counting every operation, so a
test can:

* **dry-run** a workload to learn its total operation count;
* **crash** at any single operation index (``crash_at``) by raising
  :class:`CrashError` *instead of* performing the operation — the
  simulated kill -9.  With ``torn=True`` a crashed ``write``
  first applies a prefix of its payload, modelling a write torn
  mid-record by the crash;
* **inject transient errors** — a one-shot ``OSError`` at a given
  operation index (``errors``) or a persistent errno for one
  operation kind (``persistent``) — to exercise the bounded
  retry/backoff and the benign-vs-fatal directory-fsync split;
* **scope the injection** (``only``) to operations whose detail
  string contains a substring — e.g. ``only="tail.wal"`` makes an
  ENOSPC hit the journal-append path while segment seals still
  succeed, which is how the serve-layer chaos suite drives the
  read-only governor without also breaking recovery.

The crash model matches a real crash on a journaling filesystem:
operations that completed before the crash are durable (the suite
never un-writes them), the crashed operation either did not happen or
— for writes — was torn, and nothing after it happened.  Losing
*completed-but-unfsynced* page-cache writes is out of scope: the
store's recovery never depends on un-fsynced data being present,
only on fsynced data surviving, which this model does test.

Use :func:`inject` to swap the seam in for the duration of a block::

    fs = FaultFS(crash_at=17, torn=True)
    with inject(fs):
        with pytest.raises(CrashError):
            workload()
    verify_reopened_store()
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager

from repro.analytics import storage


class CrashError(RuntimeError):
    """The simulated crash.  Deliberately not an ``OSError``: storage
    must never catch or retry it, exactly like a real kill -9."""


class FaultFS:
    """Counting / crashing / error-injecting stand-in for storage._io."""

    def __init__(self, crash_at=None, torn=False, errors=None,
                 persistent=None, flaky=None, real_fsync=True,
                 only=None):
        #: Total operations observed so far (and the index the next
        #: operation will get).
        self.ops = 0
        self.counts: Counter = Counter()
        self.log: list[tuple[int, str, str]] = []
        #: Segment reads observed (separate from the crash-sweep op
        #: index; see the read methods below).
        self.reads = 0
        self.read_log: list[str] = []
        self.crash_at = crash_at
        self.torn = torn
        #: op index -> errno: raise a one-shot OSError at that index.
        self.errors = dict(errors or {})
        #: op kind (e.g. "fsync_dir") -> errno: raise on every call.
        self.persistent = dict(persistent or {})
        #: op kind -> [times, errno]: raise for the first `times` calls
        #: of that kind, then behave (exercises the retry/backoff).
        self.flaky = {
            kind: list(spec) for kind, spec in (flaky or {}).items()
        }
        #: Detail-substring scope: when set, faults (crash, errors,
        #: persistent, flaky) only fire on operations whose detail
        #: contains this text; everything else is counted but behaves.
        self.only = only
        #: The crash sweep passes real_fsync=False: the op is still
        #: counted (and crashable) but os.fsync is skipped — in the
        #: crash model completed writes are durable anyway, and the
        #: sweep re-runs the workload hundreds of times.
        self.real_fsync = real_fsync

    def _tick(self, kind: str, detail: str = "") -> bool:
        """Account one operation; returns True when it must crash.
        Transient-error injection raises ``OSError`` directly."""
        index = self.ops
        self.ops += 1
        self.counts[kind] += 1
        self.log.append((index, kind, detail))
        if self.only is not None and self.only not in detail:
            return False
        if kind in self.persistent:
            raise OSError(self.persistent[kind], f"injected {kind} error")
        if index in self.errors:
            raise OSError(
                self.errors.pop(index), f"injected error at op {index}"
            )
        spec = self.flaky.get(kind)
        if spec is not None and spec[0] > 0:
            spec[0] -= 1
            raise OSError(spec[1], f"injected flaky {kind} error")
        return self.crash_at is not None and index == self.crash_at

    # -- the storage._io interface ----------------------------------------

    def write(self, handle, data) -> None:
        name = getattr(handle, "name", "?")
        if self._tick("write", f"{name}: {len(data)} bytes"):
            if self.torn and len(data) > 1:
                # The crash tears the write mid-payload: a prefix hits
                # the disk, the rest never does.
                handle.write(data[:len(data) // 2])
            raise CrashError(f"crash at write (op {self.ops - 1})")
        handle.write(data)

    def fsync(self, fd: int) -> None:
        if self._tick("fsync"):
            raise CrashError(f"crash at fsync (op {self.ops - 1})")
        if self.real_fsync:
            os.fsync(fd)

    def fsync_dir(self, fd: int) -> None:
        if self._tick("fsync_dir"):
            raise CrashError(f"crash at fsync_dir (op {self.ops - 1})")
        if self.real_fsync:
            os.fsync(fd)

    def replace(self, src, dst) -> None:
        if self._tick("replace", str(dst)):
            raise CrashError(f"crash at replace (op {self.ops - 1})")
        os.replace(src, dst)

    def truncate(self, handle, size: int) -> None:
        if self._tick("truncate", str(size)):
            raise CrashError(f"crash at truncate (op {self.ops - 1})")
        handle.truncate(size)

    def unlink(self, path) -> None:
        if self._tick("unlink", str(path)):
            raise CrashError(f"crash at unlink (op {self.ops - 1})")
        os.unlink(path)

    # -- segment reads (observed, never crash-swept) -----------------------
    #
    # Reads hold no durability state, so they are deliberately *not*
    # ticked into the crash-sweep op index (which must stay stable for
    # the write-path sweeps).  They are counted separately so a test
    # can assert that a manifest-only code path — the shard
    # coordinator's prune planner — opened zero segment files, and
    # they honor ``persistent={"read": errno}`` for error injection.

    def _read_fault(self, detail: str) -> None:
        self.reads += 1
        self.read_log.append(detail)
        if self.only is not None and self.only not in detail:
            return
        if "read" in self.persistent:
            raise OSError(self.persistent["read"], "injected read error")

    def read_bytes(self, path) -> bytes:
        self._read_fault(str(path))
        return storage._OsIO.read_bytes(path)

    def read_block(self, path, offset: int, length: int) -> bytes:
        self._read_fault(str(path))
        return storage._OsIO.read_block(path, offset, length)


@contextmanager
def inject(fs: FaultFS):
    """Swap ``storage._io`` for ``fs`` within the block."""
    saved = storage._io
    storage._io = fs
    try:
        yield fs
    finally:
        storage._io = saved
