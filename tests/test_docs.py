"""The docs stay true or the build goes red.

Four classes of drift this suite catches:

* a markdown link (README or docs/) pointing at a file that is gone;
* a ``src/...`` / ``tests/...`` path or a ``repro.x.y`` module named
  in prose that no longer exists or no longer imports;
* a documented CLI whose ``--help`` no longer runs;
* the API/metrics references diverging from the code: every
  ``/query/<name>`` route and every ``/metrics`` family must appear in
  the docs, and vice versa.
"""

from __future__ import annotations

import importlib
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_PAGES = sorted((REPO / "docs").glob("*.md"))
PAGES = [REPO / "README.md", *DOC_PAGES]

_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
_PATH = re.compile(r"`((?:src|tests|docs|benchmarks|examples)/[\w./-]+?\.(?:py|md))`")
_MODULE = re.compile(r"`(repro(?:\.\w+)+)`")
_HELP_CMD = re.compile(r"python -m (repro[\w.]+)")


def _page_ids():
    return [page.relative_to(REPO).as_posix() for page in PAGES]


def test_the_four_serve_docs_exist():
    names = {page.name for page in DOC_PAGES}
    assert {
        "architecture.md", "http-api.md", "runbook.md",
        "observability.md", "failure-modes.md",
    } <= names


@pytest.mark.parametrize("page", PAGES, ids=_page_ids())
def test_markdown_links_resolve(page):
    text = page.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if "://" in target:                      # external URL
            continue
        resolved = (page.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken links {broken}"


@pytest.mark.parametrize("page", PAGES, ids=_page_ids())
def test_referenced_paths_exist(page):
    text = page.read_text(encoding="utf-8")
    missing = [
        path for path in _PATH.findall(text)
        if not (REPO / path).exists()
    ]
    assert not missing, f"{page.name}: dead paths {missing}"


@pytest.mark.parametrize("page", PAGES, ids=_page_ids())
def test_referenced_modules_import(page):
    text = page.read_text(encoding="utf-8")
    failures = []
    for module in set(_MODULE.findall(text)):
        try:
            importlib.import_module(module)
            continue
        except ImportError:
            pass
        # Maybe a dotted attribute path (module.ClassName).
        parent, _dot, attr = module.rpartition(".")
        try:
            if not hasattr(importlib.import_module(parent), attr):
                failures.append(f"{module}: no attribute {attr!r}")
        except ImportError as exc:
            failures.append(f"{module}: {exc}")
    assert not failures, f"{page.name}: {failures}"


def _documented_cli_modules():
    modules = set()
    for page in PAGES:
        modules.update(_HELP_CMD.findall(page.read_text(encoding="utf-8")))
    # Only entry points (modules with a main); json.tool-style stdlib
    # helpers never match the repro prefix.
    return sorted(modules)


@pytest.mark.parametrize("module", _documented_cli_modules())
def test_documented_clis_answer_help(module):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, "-m", module, "--help"],
        capture_output=True, text=True, timeout=60, env=env,
    )
    assert result.returncode == 0, (
        f"python -m {module} --help failed:\n{result.stderr}"
    )
    assert "usage" in result.stdout.lower()


def _app():
    from repro.analytics.storage import FlowStore
    from repro.serve.server import ServeApp

    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        store = FlowStore(Path(directory) / "store")
        try:
            yield_app = ServeApp(store)
            # Collected eagerly: the registry and routes are static.
            routes = set(yield_app.query_routes)
            families = {m.name for m in yield_app.registry._metrics.values()}
        finally:
            store.close()
    return routes, families


def test_http_api_doc_matches_query_routes():
    routes, _families = _app()
    text = (REPO / "docs" / "http-api.md").read_text(encoding="utf-8")
    table_names = set(re.findall(r"^\| `([\w-]+)` \|", text, re.M))
    assert table_names == routes, (
        f"docs/http-api.md route table out of sync: "
        f"undocumented={sorted(routes - table_names)}, "
        f"stale={sorted(table_names - routes)}"
    )


def test_observability_doc_matches_registry():
    _routes, families = _app()
    text = (REPO / "docs" / "observability.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"`((?:serve|flowstore)_\w+)`", text))
    assert families <= documented, (
        f"metrics missing from docs/observability.md: "
        f"{sorted(families - documented)}"
    )
    # Everything the doc names as a family must be registered (prose
    # may additionally mention label names; restrict to the catalog
    # tables' first column).
    tabled = set(re.findall(r"^\| `((?:serve|flowstore)_\w+)` \|", text, re.M))
    assert tabled <= families, (
        f"stale metrics documented: {sorted(tabled - families)}"
    )


def test_runbook_quarantine_workflow_points_at_real_tools():
    text = (REPO / "docs" / "runbook.md").read_text(encoding="utf-8")
    assert "failure-modes.md" in text
    assert "repro.analytics.flowstore_cli" in text
    assert "quarantine" in text


def test_architecture_doc_is_linked_from_readme():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for page in ("docs/architecture.md", "docs/http-api.md",
                 "docs/runbook.md", "docs/observability.md"):
        assert page in readme, f"README does not link {page}"
